package asm

import (
	"fmt"
	"strconv"
	"strings"

	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/isa"
	"tia/internal/mem"
	"tia/internal/pcpe"
	"tia/internal/pe"
)

// Netlist is a fully constructed fabric plus name-indexed handles to its
// elements, built from one netlist source file.
type Netlist struct {
	Fabric  *fabric.Fabric
	Sources map[string]*fabric.Source
	Sinks   map[string]*fabric.Sink
	PEs     map[string]*pe.PE
	PCPEs   map[string]*pcpe.PE
	Mems    map[string]*mem.Scratchpad

	// fpRecs are canonical one-record-per-declaration strings derived from
	// the *assembled* fabric (formatted programs, resolved port indices,
	// effective channel capacities/latencies). Fingerprint hashes them; see
	// hash.go.
	fpRecs []string
}

// Declaration IR: the parse phase records what the source declares
// without constructing anything, so validation and resource admission
// can run before the first allocation.

type sourceDecl struct {
	line int
	name string
	toks []channel.Token
}

type sinkDecl struct {
	line int
	name string
	mode string // "eods" or "count"
	n    int
}

type spDecl struct {
	line  int
	name  string
	size  int
	lat   int
	image []isa.Word
}

type peDecl struct {
	line int
	kind string // "pe" or "pcpe"
	name string
	cfg  isa.Config // pe only
	tia  *TIAProgram
	pc   *PCProgram

	// Built by the validate phase (PE construction is bounded small by
	// isa.Config.CheckLimits, so it is safe ahead of admission).
	tiaProc *pe.PE
	pcProc  *pcpe.PE
}

type placement struct {
	name string
	x, y int
	line int
}

type wireDecl struct {
	line             int
	srcElem, srcPort string
	dstElem, dstPort string
	capacity, lat    int // -1 means fabric default

	// Resolved by the validate phase.
	srcIdx, dstIdx int
}

// Structural size ceilings, enforced by the validate phase regardless
// of any resource governor: both scratchpad words and channel buffers
// are allocated eagerly at construction, so an absurd size in either is
// a one-line memory bomb, not a plausible design.
const (
	maxScratchpadWords = 1 << 22
	maxChannelCap      = 1 << 20
)

type elemKind int

const (
	kindSource elemKind = iota
	kindSink
	kindPE
	kindPCPE
	kindMem
)

func (k elemKind) String() string {
	switch k {
	case kindSource:
		return "source"
	case kindSink:
		return "sink"
	case kindPE:
		return "pe"
	case kindPCPE:
		return "pcpe"
	default:
		return "scratchpad"
	}
}

// netParser carries state across the parse, validate and build phases.
type netParser struct {
	tiaCfg isa.Config
	pcCfg  pcpe.Config
	fabCfg fabric.Config

	diags     Diagnostics
	names     map[string]elemKind
	pesByName map[string]*peDecl

	srcDecls  []sourceDecl
	sinkDecls []sinkDecl
	spDecls   []spDecl
	peDecls   []*peDecl
	places    []placement
	wires     []wireDecl
}

// ParseNetlist parses a complete fabric description:
//
//	source a : 1 3 5 eod        // token stream (words, V#T, eod)
//	sink o                      // completes on one EOD
//	sink o2 count 5             // or after N tokens
//	scratchpad sp 256 : 9 9 9   // size, optional initial image
//	pe merge                    // triggered PE block (see ParseTIA)
//	  ...
//	end
//	pcpe merge2                 // sequential PE block (see ParsePC)
//	  ...
//	end
//	place merge 1 1
//	wire a.0 -> merge.a
//	wire merge.o -> o.0 cap 8 lat 2
//
// Scratchpad ports are named raddr, waddr, wdata (inputs) and rdata
// (output); sources expose output 0 and sinks input 0; PE ports go by
// their declared channel names.
//
// Parsing runs in three phases — parse (declaration IR, no
// construction), validate (structural checks with source positions,
// reported together as a Diagnostics multi-error), build (construction
// through error-returning fabric APIs) — so a malformed or hostile
// netlist is rejected with typed diagnostics instead of a panic, and
// nothing is allocated for a netlist that fails validation.
func ParseNetlist(src string, tiaCfg isa.Config, pcCfg pcpe.Config) (*Netlist, error) {
	return ParseNetlistAdmit(src, tiaCfg, pcCfg, nil)
}

// ParseNetlistAdmit is ParseNetlist with a resource-admission hook: after
// validation succeeds and before anything is built, admit is called with
// the netlist's resource Census. If admit returns an error, construction
// is abandoned and that error is returned verbatim (so callers can
// surface typed resource-limit errors). A nil admit admits everything.
func ParseNetlistAdmit(src string, tiaCfg isa.Config, pcCfg pcpe.Config, admit func(Census) error) (*Netlist, error) {
	np := newNetParser(tiaCfg, pcCfg)
	np.parse(src)
	census := np.validate()
	if err := np.diags.errOrNil(); err != nil {
		return nil, err
	}
	if admit != nil {
		if err := admit(census); err != nil {
			return nil, err
		}
	}
	return np.build()
}

// CheckNetlist runs the parse and validate phases only, returning the
// netlist's resource Census without building a fabric. Coordinators use
// it to vet batch templates cheaply; the error (if any) is a
// Diagnostics multi-error.
func CheckNetlist(src string, tiaCfg isa.Config, pcCfg pcpe.Config) (Census, error) {
	np := newNetParser(tiaCfg, pcCfg)
	np.parse(src)
	census := np.validate()
	return census, np.diags.errOrNil()
}

func newNetParser(tiaCfg isa.Config, pcCfg pcpe.Config) *netParser {
	return &netParser{
		tiaCfg:    tiaCfg,
		pcCfg:     pcCfg,
		fabCfg:    fabric.DefaultConfig(),
		names:     map[string]elemKind{},
		pesByName: map[string]*peDecl{},
	}
}

// parse scans the source into declaration IR, accumulating diagnostics
// instead of stopping at the first problem.
func (np *netParser) parse(src string) {
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "config":
			np.parseConfig(i+1, fields[1:])
		case "source":
			np.parseSource(i+1, line)
		case "sink":
			np.parseSink(i+1, fields[1:])
		case "scratchpad":
			np.parseScratchpad(i+1, line)
		case "place":
			np.parsePlace(i+1, fields[1:])
		case "wire":
			np.parseWire(i+1, fields[1:])
		case "pe", "pcpe":
			var body []string
			j := i + 1
			for ; j < len(lines); j++ {
				if strings.TrimSpace(stripComment(lines[j])) == "end" {
					break
				}
				body = append(body, lines[j])
			}
			if j == len(lines) {
				np.diags.add(i+1, "unterminated %s block (missing end)", fields[0])
				return
			}
			if len(fields) < 2 {
				np.diags.add(i+1, "%s needs a name", fields[0])
			} else {
				np.parsePEBlock(i+1, fields[0], fields[1], fields[2:], strings.Join(body, "\n"))
			}
			i = j
		default:
			np.diags.add(i+1, "unknown directive %q", fields[0])
		}
	}
}

func (np *netParser) parseConfig(ln int, fields []string) {
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.Atoi(fields[i+1])
		if err != nil {
			np.diags.add(ln, "bad config value %q", fields[i+1])
			return
		}
		switch fields[i] {
		case "cap":
			if v < 1 {
				np.diags.add(ln, "config cap %d < 1", v)
				return
			}
			if v > maxChannelCap {
				np.diags.add(ln, "config cap %d exceeds the %d-token fabric limit", v, maxChannelCap)
				return
			}
			np.fabCfg.ChannelCapacity = v
		case "lat":
			if v < 0 {
				np.diags.add(ln, "config lat %d < 0", v)
				return
			}
			np.fabCfg.ChannelLatency = v
		default:
			np.diags.add(ln, "unknown config key %q", fields[i])
			return
		}
	}
}

// declareName validates and registers an element name, reporting a bad
// or duplicate name. It returns false when the declaration must be
// dropped entirely (the name cannot be referenced).
func (np *netParser) declareName(ln int, name string, kind elemKind) bool {
	if !ident(name) {
		np.diags.add(ln, "bad element name %q", name)
		return false
	}
	if _, dup := np.names[name]; dup {
		np.diags.add(ln, "element %q already defined", name)
		return false
	}
	np.names[name] = kind
	return true
}

func (np *netParser) parseSource(ln int, line string) {
	colon := strings.Index(line, ":")
	if colon < 0 {
		np.diags.add(ln, "source needs ': tokens'")
		return
	}
	head := strings.Fields(line[:colon])
	if len(head) != 2 {
		np.diags.add(ln, "source needs exactly one name")
		return
	}
	name := head[1]
	if !np.declareName(ln, name, kindSource) {
		return
	}
	var toks []channel.Token
	for _, f := range strings.Fields(line[colon+1:]) {
		tok, err := parseToken(f)
		if err != nil {
			np.diags.add(ln, "%v", err)
			return
		}
		toks = append(toks, tok)
	}
	np.srcDecls = append(np.srcDecls, sourceDecl{line: ln, name: name, toks: toks})
}

// parseToken parses "eod", a bare word, or value#tag.
func parseToken(f string) (channel.Token, error) {
	if f == "eod" {
		return channel.EOD(), nil
	}
	if h := strings.Index(f, "#"); h >= 0 {
		v, err := parseWord(f[:h])
		if err != nil {
			return channel.Token{}, err
		}
		t, err := parseTag(f[h+1:])
		if err != nil {
			return channel.Token{}, err
		}
		return channel.Token{Data: v, Tag: t}, nil
	}
	v, err := parseWord(f)
	if err != nil {
		return channel.Token{}, err
	}
	return channel.Data(v), nil
}

func (np *netParser) parseSink(ln int, fields []string) {
	if len(fields) == 0 {
		np.diags.add(ln, "sink needs a name")
		return
	}
	name := fields[0]
	if !np.declareName(ln, name, kindSink) {
		return
	}
	switch {
	case len(fields) == 1:
		np.sinkDecls = append(np.sinkDecls, sinkDecl{line: ln, name: name, mode: "eods", n: 1})
	case len(fields) == 3 && fields[1] == "count":
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			np.diags.add(ln, "bad sink count %q", fields[2])
			return
		}
		np.sinkDecls = append(np.sinkDecls, sinkDecl{line: ln, name: name, mode: "count", n: n})
	case len(fields) == 3 && fields[1] == "eods":
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			np.diags.add(ln, "bad sink eods %q", fields[2])
			return
		}
		np.sinkDecls = append(np.sinkDecls, sinkDecl{line: ln, name: name, mode: "eods", n: n})
	default:
		np.diags.add(ln, "bad sink declaration")
	}
}

func (np *netParser) parseScratchpad(ln int, line string) {
	spec := line
	var image []isa.Word
	if colon := strings.Index(line, ":"); colon >= 0 {
		spec = line[:colon]
		for _, f := range strings.Fields(line[colon+1:]) {
			w, err := parseWord(f)
			if err != nil {
				np.diags.add(ln, "%v", err)
				return
			}
			image = append(image, w)
		}
	}
	fields := strings.Fields(spec)
	if len(fields) < 3 {
		np.diags.add(ln, "scratchpad needs name and size")
		return
	}
	name := fields[1]
	if !np.declareName(ln, name, kindMem) {
		return
	}
	size, err := strconv.Atoi(fields[2])
	if err != nil || size <= 0 {
		np.diags.add(ln, "bad scratchpad size %q", fields[2])
		return
	}
	// On-fabric scratchpads are small by definition; reject sizes that
	// could only be a typo (or a hostile input).
	if size > maxScratchpadWords {
		np.diags.add(ln, "scratchpad size %d exceeds the %d-word fabric limit", size, maxScratchpadWords)
		return
	}
	d := spDecl{line: ln, name: name, size: size, image: image}
	for i := 3; i+1 < len(fields); i += 2 {
		v, err := strconv.Atoi(fields[i+1])
		if err != nil || v < 0 {
			np.diags.add(ln, "bad scratchpad option value %q", fields[i+1])
			return
		}
		switch fields[i] {
		case "lat":
			d.lat = v
		default:
			np.diags.add(ln, "unknown scratchpad option %q", fields[i])
			return
		}
	}
	if (len(fields)-3)%2 != 0 {
		np.diags.add(ln, "scratchpad options must be key value pairs")
		return
	}
	if len(image) > size {
		np.diags.add(ln, "scratchpad %s: %d-word image exceeds %d-word size", name, len(image), size)
		return
	}
	np.spDecls = append(np.spDecls, d)
}

func (np *netParser) parsePlace(ln int, fields []string) {
	if len(fields) != 3 {
		np.diags.add(ln, "place needs name x y")
		return
	}
	x, err1 := strconv.Atoi(fields[1])
	y, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil {
		np.diags.add(ln, "bad coordinates")
		return
	}
	np.places = append(np.places, placement{name: fields[0], x: x, y: y, line: ln})
}

func (np *netParser) parseWire(ln int, fields []string) {
	// wire a.p -> b.q [cap N] [lat N]
	if len(fields) < 3 || fields[1] != "->" {
		np.diags.add(ln, "wire syntax: wire src.port -> dst.port [cap N] [lat N]")
		return
	}
	w := wireDecl{line: ln, capacity: -1, lat: -1}
	var ok bool
	if w.srcElem, w.srcPort, ok = splitPort(fields[0]); !ok {
		np.diags.add(ln, "bad endpoint %q", fields[0])
		return
	}
	if w.dstElem, w.dstPort, ok = splitPort(fields[2]); !ok {
		np.diags.add(ln, "bad endpoint %q", fields[2])
		return
	}
	for i := 3; i+1 < len(fields); i += 2 {
		v, err := strconv.Atoi(fields[i+1])
		if err != nil {
			np.diags.add(ln, "bad wire option value %q", fields[i+1])
			return
		}
		switch fields[i] {
		case "cap":
			// Validated here, not in the validate phase: -1 is the
			// internal "use the fabric default" sentinel, so an explicit
			// negative must not survive parsing.
			if v < 1 {
				np.diags.add(ln, "bad wire capacity %d (must be >= 1)", v)
				return
			}
			w.capacity = v
		case "lat":
			if v < 0 {
				np.diags.add(ln, "bad wire latency %d (must be >= 0)", v)
				return
			}
			w.lat = v
		default:
			np.diags.add(ln, "unknown wire option %q", fields[i])
			return
		}
	}
	np.wires = append(np.wires, w)
}

func splitPort(s string) (elem, port string, ok bool) {
	dot := strings.LastIndex(s, ".")
	if dot <= 0 || dot == len(s)-1 {
		return "", "", false
	}
	return s[:dot], s[dot+1:], true
}

// parsePEBlock parses one pe/pcpe block. Optional key=value options on
// the header line override the PE configuration, e.g.
//
//	pe sched insts=32 preds=16
//
// Recognized keys: insts (trigger pool), preds, regs, in, out.
func (np *netParser) parsePEBlock(ln int, kind, name string, opts []string, body string) {
	if !np.declareName(ln, name, map[string]elemKind{"pe": kindPE, "pcpe": kindPCPE}[kind]) {
		return
	}
	d := &peDecl{line: ln, kind: kind, name: name}
	np.pesByName[name] = d
	np.peDecls = append(np.peDecls, d)
	if kind == "pe" {
		cfg := np.tiaCfg
		for _, opt := range opts {
			eq := strings.Index(opt, "=")
			if eq < 0 {
				np.diags.add(ln, "bad PE option %q (want key=value)", opt)
				return
			}
			v, err := strconv.Atoi(opt[eq+1:])
			if err != nil || v < 1 {
				np.diags.add(ln, "bad PE option value %q", opt)
				return
			}
			switch opt[:eq] {
			case "insts":
				cfg.MaxInsts = v
			case "preds":
				cfg.NumPreds = v
			case "regs":
				cfg.NumRegs = v
			case "in":
				cfg.NumIn = v
			case "out":
				cfg.NumOut = v
			default:
				np.diags.add(ln, "unknown PE option %q", opt[:eq])
				return
			}
		}
		d.cfg = cfg
		prog, err := ParseTIA(name, body)
		if err != nil {
			np.diags.add(0, "%v", err)
			return
		}
		d.tia = prog
		return
	}
	if len(opts) > 0 {
		np.diags.add(ln, "pcpe blocks take no options")
		return
	}
	prog, err := ParsePC(name, body)
	if err != nil {
		np.diags.add(0, "%v", err)
		return
	}
	d.pc = prog
}

// validate runs the structural checks that need the whole file: PE
// program validation against their configurations (register, predicate
// and channel indices), placement and wire endpoint existence, port
// resolution with bounds checks, double-connection detection, and
// channel parameter sanity. It returns the resource Census used for
// admission; diagnostics accumulate in np.diags.
func (np *netParser) validate() Census {
	var c Census

	// PE programs: building the processing element validates the program
	// against its configuration (isa.Config.ValidateProgram) and is
	// bounded small by isa.Config.CheckLimits, so it is safe pre-admission.
	for _, d := range np.peDecls {
		switch {
		case d.tia != nil:
			proc, err := d.tia.Build(d.cfg)
			if err != nil {
				np.diags.add(0, "%v", err)
				continue
			}
			d.tiaProc = proc
			c.Instructions += len(proc.Program())
		case d.pc != nil:
			proc, err := d.pc.Build(np.pcCfg)
			if err != nil {
				np.diags.add(0, "%v", err)
				continue
			}
			d.pcProc = proc
			c.Instructions += len(proc.Program())
		}
	}

	for _, pl := range np.places {
		if _, ok := np.names[pl.name]; !ok {
			np.diags.add(pl.line, "place of unknown element %q", pl.name)
		}
	}

	// Wires: endpoint existence, port resolution (with numeric bounds),
	// single-producer/single-consumer, channel parameter sanity.
	usedOut := map[string]int{} // "elem.port" -> first line
	usedIn := map[string]int{}
	for i := range np.wires {
		w := &np.wires[i]
		srcKind, ok := np.names[w.srcElem]
		if !ok {
			np.diags.add(w.line, "wire from unknown element %q", w.srcElem)
			continue
		}
		dstKind, ok := np.names[w.dstElem]
		if !ok {
			np.diags.add(w.line, "wire to unknown element %q", w.dstElem)
			continue
		}
		srcIdx, err := np.resolveOutPort(srcKind, w.srcElem, w.srcPort)
		if err != nil {
			np.diags.add(w.line, "%v", err)
			continue
		}
		dstIdx, err := np.resolveInPort(dstKind, w.dstElem, w.dstPort)
		if err != nil {
			np.diags.add(w.line, "%v", err)
			continue
		}
		if srcIdx < 0 || dstIdx < 0 {
			// Port belongs to a PE whose program failed to parse; that
			// diagnostic is already reported.
			continue
		}
		if w.capacity != -1 && w.capacity < 1 {
			np.diags.add(w.line, "bad wire capacity %d (must be >= 1)", w.capacity)
			continue
		}
		if w.capacity > maxChannelCap {
			// Channel buffers are allocated eagerly; an unbounded cap is a
			// one-line memory bomb.
			np.diags.add(w.line, "wire capacity %d exceeds the %d-token fabric limit", w.capacity, maxChannelCap)
			continue
		}
		if w.lat != -1 && w.lat < 0 {
			np.diags.add(w.line, "bad wire latency %d (must be >= 0)", w.lat)
			continue
		}
		outKey := fmt.Sprintf("%s.%d", w.srcElem, srcIdx)
		if first, dup := usedOut[outKey]; dup {
			np.diags.add(w.line, "output %s.%s already connected (line %d)", w.srcElem, w.srcPort, first)
			continue
		}
		inKey := fmt.Sprintf("%s.%d", w.dstElem, dstIdx)
		if first, dup := usedIn[inKey]; dup {
			np.diags.add(w.line, "input %s.%s already connected (line %d)", w.dstElem, w.dstPort, first)
			continue
		}
		usedOut[outKey] = w.line
		usedIn[inKey] = w.line
		w.srcIdx, w.dstIdx = srcIdx, dstIdx

		capacity := w.capacity
		if capacity < 0 {
			capacity = np.fabCfg.ChannelCapacity
			if capacity < 1 {
				capacity = 4 // fabric.New's clamp of an unset default
			}
		}
		c.Channels++
		c.ChannelTokens += capacity
	}

	c.Sources = len(np.srcDecls)
	c.Sinks = len(np.sinkDecls)
	c.Scratchpads = len(np.spDecls)
	for _, d := range np.peDecls {
		if d.kind == "pe" {
			c.PEs++
		} else {
			c.PCPEs++
		}
	}
	c.Elements = c.Sources + c.Sinks + c.Scratchpads + c.PEs + c.PCPEs
	for _, d := range np.srcDecls {
		c.SourceTokens += len(d.toks)
	}
	for _, d := range np.spDecls {
		c.ScratchpadWords += d.size
	}
	return c
}

// resolveOutPort maps a named or numeric output port to its index. A
// negative index with nil error means "unresolvable because an earlier
// diagnostic already covers it".
func (np *netParser) resolveOutPort(kind elemKind, elem, port string) (int, error) {
	switch kind {
	case kindPE, kindPCPE:
		d := np.pesByName[elem]
		if d.tia != nil {
			if i, ok := d.tia.OutIndex(port); ok {
				return i, nil
			}
			return 0, fmt.Errorf("pe %q has no output %q", elem, port)
		}
		if d.pc != nil {
			if i, ok := d.pc.OutIndex(port); ok {
				return i, nil
			}
			return 0, fmt.Errorf("pcpe %q has no output %q", elem, port)
		}
		return -1, nil // program failed to parse; already diagnosed
	case kindMem:
		switch port {
		case "rdata":
			return mem.PortReadData, nil
		case "wack":
			return mem.PortWriteAck, nil
		}
		return 0, fmt.Errorf("scratchpad %q has no output %q (use rdata/wack)", elem, port)
	case kindSource:
		if n, err := strconv.Atoi(port); err == nil {
			if n != 0 {
				return 0, fmt.Errorf("source %q: output index %d out of range (only output 0 exists)", elem, n)
			}
			return 0, nil
		}
		return 0, fmt.Errorf("element %q: bad output port %q", elem, port)
	default: // kindSink
		return 0, fmt.Errorf("element %q has no outputs", elem)
	}
}

func (np *netParser) resolveInPort(kind elemKind, elem, port string) (int, error) {
	switch kind {
	case kindPE, kindPCPE:
		d := np.pesByName[elem]
		if d.tia != nil {
			if i, ok := d.tia.InIndex(port); ok {
				return i, nil
			}
			return 0, fmt.Errorf("pe %q has no input %q", elem, port)
		}
		if d.pc != nil {
			if i, ok := d.pc.InIndex(port); ok {
				return i, nil
			}
			return 0, fmt.Errorf("pcpe %q has no input %q", elem, port)
		}
		return -1, nil
	case kindMem:
		switch port {
		case "raddr":
			return mem.PortReadAddr, nil
		case "waddr":
			return mem.PortWriteAddr, nil
		case "wdata":
			return mem.PortWriteData, nil
		}
		return 0, fmt.Errorf("scratchpad %q has no input %q (use raddr/waddr/wdata)", elem, port)
	case kindSink:
		if n, err := strconv.Atoi(port); err == nil {
			if n != 0 {
				return 0, fmt.Errorf("sink %q: input index %d out of range (only input 0 exists)", elem, n)
			}
			return 0, nil
		}
		return 0, fmt.Errorf("element %q: bad input port %q", elem, port)
	default: // kindSource
		return 0, fmt.Errorf("element %q has no inputs", elem)
	}
}

// build constructs the fabric from validated declarations using only
// error-returning construction APIs; a failure here is either a
// half-connected fabric (reported as Diagnostics and discarded) or an
// internal inconsistency.
func (np *netParser) build() (*Netlist, error) {
	n := &Netlist{
		Sources: map[string]*fabric.Source{},
		Sinks:   map[string]*fabric.Sink{},
		PEs:     map[string]*pe.PE{},
		PCPEs:   map[string]*pcpe.PE{},
		Mems:    map[string]*mem.Scratchpad{},
	}
	f := fabric.New(np.fabCfg)
	n.Fabric = f
	elems := map[string]fabric.Element{}

	addElem := func(name string, e fabric.Element) error {
		if err := f.TryAdd(e); err != nil {
			return Diagnostics{{Msg: err.Error()}}
		}
		elems[name] = e
		return nil
	}

	for _, d := range np.srcDecls {
		s := fabric.NewSource(d.name, d.toks)
		if err := addElem(d.name, s); err != nil {
			return nil, err
		}
		n.Sources[d.name] = s
		parts := make([]string, len(d.toks))
		for i, t := range d.toks {
			parts[i] = t.String()
		}
		n.fpRecs = append(n.fpRecs, fmt.Sprintf("source %s : %s", d.name, strings.Join(parts, " ")))
	}
	for _, d := range np.spDecls {
		m, err := mem.NewChecked(d.name, d.size)
		if err != nil {
			return nil, Diagnostics{{Line: d.line, Msg: err.Error()}}
		}
		m.SetReadLatency(d.lat)
		if d.image != nil {
			if err := m.TryLoad(d.image); err != nil {
				return nil, Diagnostics{{Line: d.line, Msg: err.Error()}}
			}
		}
		if err := addElem(d.name, m); err != nil {
			return nil, err
		}
		n.Mems[d.name] = m
		imgParts := make([]string, len(d.image))
		for i, w := range d.image {
			imgParts[i] = fmt.Sprintf("%d", w)
		}
		n.fpRecs = append(n.fpRecs,
			fmt.Sprintf("scratchpad %s %d lat %d : %s", d.name, d.size, m.ReadLatency(), strings.Join(imgParts, " ")))
	}
	for _, d := range np.peDecls {
		switch {
		case d.tiaProc != nil:
			if err := addElem(d.name, d.tiaProc); err != nil {
				return nil, err
			}
			n.PEs[d.name] = d.tiaProc
			n.fpRecs = append(n.fpRecs,
				fmt.Sprintf("pe %s cfg=%+v init=%s\n%s", d.name, d.cfg, initRecord(d.tia.RegInit, d.tia.PredInit), FormatTIA(d.tiaProc.Program())))
		case d.pcProc != nil:
			if err := addElem(d.name, d.pcProc); err != nil {
				return nil, err
			}
			n.PCPEs[d.name] = d.pcProc
			n.fpRecs = append(n.fpRecs,
				fmt.Sprintf("pcpe %s cfg=%+v init=%s\n%s", d.name, np.pcCfg, initRecord(d.pc.RegInit, nil), FormatPC(d.pcProc.Program())))
		}
	}
	for _, d := range np.sinkDecls {
		var s *fabric.Sink
		switch d.mode {
		case "count":
			s = fabric.NewCountingSink(d.name, d.n)
			n.fpRecs = append(n.fpRecs, fmt.Sprintf("sink %s count %d", d.name, d.n))
		default:
			if d.n == 1 {
				s = fabric.NewSink(d.name)
			} else {
				s = fabric.NewMultiEODSink(d.name, d.n)
			}
			n.fpRecs = append(n.fpRecs, fmt.Sprintf("sink %s eods %d", d.name, d.n))
		}
		if err := addElem(d.name, s); err != nil {
			return nil, err
		}
		n.Sinks[d.name] = s
	}

	for _, pl := range np.places {
		f.Place(elems[pl.name], pl.x, pl.y)
	}

	for _, w := range np.wires {
		src, _ := elems[w.srcElem].(fabric.OutPort)
		dst, _ := elems[w.dstElem].(fabric.InPort)
		var ch *channel.Channel
		var err error
		if w.capacity < 0 && w.lat < 0 {
			ch, err = f.TryWire(src, w.srcIdx, dst, w.dstIdx) // placement-aware default
		} else {
			capacity, lat := w.capacity, w.lat
			if capacity < 0 {
				capacity = np.fabCfg.ChannelCapacity
			}
			if lat < 0 {
				lat = np.fabCfg.ChannelLatency
			}
			ch, err = f.TryWireOpt(src, w.srcIdx, dst, w.dstIdx, capacity, lat)
		}
		if err != nil {
			return nil, Diagnostics{{Line: w.line, Msg: fmt.Sprintf("bad wire: %v", err)}}
		}
		// The effective capacity/latency (after defaults and placement) is
		// what matters for behaviour, so fingerprint those, not the syntax.
		n.fpRecs = append(n.fpRecs, fmt.Sprintf("wire %s.%d -> %s.%d cap %d lat %d",
			w.srcElem, w.srcIdx, w.dstElem, w.dstIdx, ch.Cap(), ch.Latency()))
	}

	// Dangling-connection check (program references an unwired channel):
	// surface it at parse time rather than at first Run.
	if err := f.Validate(); err != nil {
		return nil, Diagnostics{{Msg: err.Error()}}
	}
	return n, nil
}
