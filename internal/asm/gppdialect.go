package asm

import (
	"fmt"
	"strings"

	"tia/internal/gpp"
	"tia/internal/isa"
)

// ParseGPP parses the general-purpose core's assembly dialect:
//
//	        mov r1, #0
//	loop:   bgeu r1, r2, done
//	        lw r3, r1, #100      // r3 = mem[r1 + 100]
//	        add r4, r4, r3
//	        sw r4, r1, #200      // mem[r1 + 200] = r4
//	        add r1, r1, #1
//	        jmp loop
//	done:   halt
//
// Registers are positional (rN); operands are registers or immediates
// (#N, #0xHEX, #-N). ALU mnemonics are the shared opcode set (package
// isa); branches are beq/bne/blts/bges/bltu/bgeu; lw/sw take a
// destination/value register, a base register and an immediate offset.
func ParseGPP(name, body string) ([]gpp.Inst, error) {
	var prog []gpp.Inst
	for ln, raw := range strings.Split(body, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		inst, err := parseGPPLine(ln+1, line)
		if err != nil {
			return nil, fmt.Errorf("gpp %s: %w", name, err)
		}
		prog = append(prog, inst)
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("gpp %s: no instructions", name)
	}
	labels := map[string]bool{}
	for _, in := range prog {
		if in.Label != "" {
			labels[in.Label] = true
		}
	}
	for i, in := range prog {
		if (in.Kind == gpp.KindBr || in.Kind == gpp.KindJmp) && !labels[in.Target] {
			return nil, fmt.Errorf("gpp %s: instruction %d: unknown target %q", name, i, in.Target)
		}
	}
	return prog, nil
}

func parseGPPLine(ln int, line string) (gpp.Inst, error) {
	var label string
	if c := strings.Index(line, ":"); c >= 0 && ident(strings.TrimSpace(line[:c])) {
		label = strings.TrimSpace(line[:c])
		line = strings.TrimSpace(line[c+1:])
	}
	sp := strings.IndexAny(line, " \t")
	mnemonic, operandText := line, ""
	if sp >= 0 {
		mnemonic, operandText = line[:sp], line[sp+1:]
	}
	ops := splitOperands(operandText)
	in := gpp.Inst{Label: label}

	reg := func(s string) (int, error) {
		if n, ok := positional("r", s); ok {
			return n, nil
		}
		return 0, srcError(ln, "bad register %q", s)
	}
	src := func(s string) (gpp.Src, error) {
		if strings.HasPrefix(s, "#") {
			v, err := parseWord(s[1:])
			if err != nil {
				return gpp.Src{}, srcError(ln, "%v", err)
			}
			return gpp.I(v), nil
		}
		r, err := reg(s)
		if err != nil {
			return gpp.Src{}, err
		}
		return gpp.R(r), nil
	}
	imm := func(s string) (isa.Word, error) {
		if !strings.HasPrefix(s, "#") {
			return 0, srcError(ln, "expected immediate, got %q", s)
		}
		v, err := parseWord(s[1:])
		if err != nil {
			return 0, srcError(ln, "%v", err)
		}
		return v, nil
	}

	switch {
	case mnemonic == "jmp":
		if len(ops) != 1 {
			return in, srcError(ln, "jmp needs one target")
		}
		in.Kind = gpp.KindJmp
		in.Target = ops[0]
	case mnemonic == "halt":
		in.Kind = gpp.KindHalt
	case mnemonic == "lw":
		if len(ops) != 3 {
			return in, srcError(ln, "lw needs rd, rbase, #off")
		}
		rd, err := reg(ops[0])
		if err != nil {
			return in, err
		}
		rb, err := reg(ops[1])
		if err != nil {
			return in, err
		}
		off, err := imm(ops[2])
		if err != nil {
			return in, err
		}
		in.Kind = gpp.KindLoad
		in.Rd, in.Rs1, in.Off = rd, gpp.R(rb), off
	case mnemonic == "sw":
		if len(ops) != 3 {
			return in, srcError(ln, "sw needs rval, rbase, #off")
		}
		rv, err := reg(ops[0])
		if err != nil {
			return in, err
		}
		rb, err := reg(ops[1])
		if err != nil {
			return in, err
		}
		off, err := imm(ops[2])
		if err != nil {
			return in, err
		}
		in.Kind = gpp.KindStore
		in.Rs2, in.Rs1, in.Off = gpp.R(rv), gpp.R(rb), off
	default:
		if brop, ok := gpp.BrOpByName(mnemonic); ok {
			if len(ops) != 3 {
				return in, srcError(ln, "%s needs two operands and a target", mnemonic)
			}
			a, err := src(ops[0])
			if err != nil {
				return in, err
			}
			b, err := src(ops[1])
			if err != nil {
				return in, err
			}
			in.Kind = gpp.KindBr
			in.BrOp, in.Rs1, in.Rs2, in.Target = brop, a, b, ops[2]
			return in, nil
		}
		op, ok := isa.OpcodeByName(mnemonic)
		if !ok {
			return in, srcError(ln, "unknown mnemonic %q", mnemonic)
		}
		if len(ops) != 1+op.Arity() {
			return in, srcError(ln, "%s needs rd plus %d sources", mnemonic, op.Arity())
		}
		rd, err := reg(ops[0])
		if err != nil {
			return in, err
		}
		in.Kind = gpp.KindALU
		in.Op = op
		in.Rd = rd
		if op.Arity() >= 1 {
			if in.Rs1, err = src(ops[1]); err != nil {
				return in, err
			}
		}
		if op.Arity() >= 2 {
			if in.Rs2, err = src(ops[2]); err != nil {
				return in, err
			}
		}
	}
	return in, nil
}

// FormatGPP renders a core program in the parseable dialect, the
// disassembler counterpart of ParseGPP.
func FormatGPP(prog []gpp.Inst) string {
	var b strings.Builder
	for i := range prog {
		b.WriteString(prog[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}
