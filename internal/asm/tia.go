package asm

import (
	"fmt"
	"strconv"
	"strings"

	"tia/internal/isa"
	"tia/internal/pe"
)

// TIAProgram is a parsed triggered-instruction program plus its symbol
// tables. Channel names map to port indices in declaration order, which is
// what the netlist layer and hand wiring use.
type TIAProgram struct {
	Name     string
	InNames  []string
	OutNames []string
	Insts    []isa.Instruction

	RegInit  map[int]isa.Word
	PredInit map[int]bool

	ins, outs, regs, preds map[string]int
}

// InIndex resolves an input channel name to its port index.
func (p *TIAProgram) InIndex(name string) (int, bool) {
	i, ok := p.ins[name]
	return i, ok
}

// OutIndex resolves an output channel name to its port index.
func (p *TIAProgram) OutIndex(name string) (int, bool) {
	i, ok := p.outs[name]
	return i, ok
}

// Build instantiates the program on a triggered PE with the given
// configuration and applies declared initial register/predicate values.
func (p *TIAProgram) Build(cfg isa.Config) (*pe.PE, error) {
	proc, err := pe.New(p.Name, cfg, p.Insts)
	if err != nil {
		return nil, err
	}
	for i, v := range p.RegInit {
		if i >= cfg.NumRegs {
			return nil, fmt.Errorf("asm: %s: initial value for r%d but PE has %d registers", p.Name, i, cfg.NumRegs)
		}
		proc.SetReg(i, v)
	}
	for i, v := range p.PredInit {
		if i >= cfg.NumPreds {
			return nil, fmt.Errorf("asm: %s: initial value for p%d but PE has %d predicates", p.Name, i, cfg.NumPreds)
		}
		proc.SetPred(i, v)
	}
	return proc, nil
}

// tiaParser accumulates state while parsing one pe block.
type tiaParser struct {
	prog *TIAProgram
}

// ParseTIA parses the body of one triggered-PE block (the lines between
// "pe NAME" and "end"). Lines hold declarations (in/out/reg/pred) and
// triggered instructions:
//
//	cmp: when !c a.tag==0 b.tag==0 : leu p:sel, a, b ; set c
//
// Instruction grammar: [label:] when CONDS : OP OPERANDS [; ACTION]...
// CONDS are space-separated predicate literals (x, !x), channel readiness
// (chan or chan.tag==N / chan.tag!=N), or the keyword "always". OPERANDS
// list destinations then sources; the opcode's arity determines the split.
// ACTIONs are "deq chan", "set pred", "clr pred".
func ParseTIA(name, body string) (*TIAProgram, error) {
	tp := &tiaParser{prog: &TIAProgram{
		Name:     name,
		RegInit:  map[int]isa.Word{},
		PredInit: map[int]bool{},
		ins:      map[string]int{},
		outs:     map[string]int{},
		regs:     map[string]int{},
		preds:    map[string]int{},
	}}
	for i, raw := range strings.Split(body, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := tp.parseLine(i+1, line); err != nil {
			return nil, fmt.Errorf("pe %s: %w", name, err)
		}
	}
	if len(tp.prog.Insts) == 0 {
		return nil, fmt.Errorf("pe %s: no instructions", name)
	}
	return tp.prog, nil
}

func (tp *tiaParser) parseLine(ln int, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "in":
		return tp.declChannels(ln, fields[1:], tp.prog.ins, &tp.prog.InNames)
	case "out":
		return tp.declChannels(ln, fields[1:], tp.prog.outs, &tp.prog.OutNames)
	case "reg":
		return tp.declReg(ln, line)
	case "pred":
		return tp.declPred(ln, line)
	default:
		return tp.parseInst(ln, line)
	}
}

func (tp *tiaParser) checkFresh(ln int, n string) error {
	if !ident(n) {
		return srcError(ln, "bad identifier %q", n)
	}
	for _, m := range []map[string]int{tp.prog.ins, tp.prog.outs, tp.prog.regs, tp.prog.preds} {
		if _, dup := m[n]; dup {
			return srcError(ln, "name %q already declared", n)
		}
	}
	return nil
}

func (tp *tiaParser) declChannels(ln int, names []string, table map[string]int, order *[]string) error {
	if len(names) == 0 {
		return srcError(ln, "channel declaration needs at least one name")
	}
	for _, n := range names {
		if err := tp.checkFresh(ln, n); err != nil {
			return err
		}
		table[n] = len(*order)
		*order = append(*order, n)
	}
	return nil
}

func (tp *tiaParser) declReg(ln int, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "reg"))
	if eq := strings.Index(rest, "="); eq >= 0 {
		name := strings.TrimSpace(rest[:eq])
		if err := tp.checkFresh(ln, name); err != nil {
			return err
		}
		v, err := parseWord(strings.TrimSpace(rest[eq+1:]))
		if err != nil {
			return srcError(ln, "%v", err)
		}
		idx := len(tp.prog.regs)
		tp.prog.regs[name] = idx
		tp.prog.RegInit[idx] = v
		return nil
	}
	for _, n := range strings.Fields(rest) {
		if err := tp.checkFresh(ln, n); err != nil {
			return err
		}
		tp.prog.regs[n] = len(tp.prog.regs)
	}
	return nil
}

func (tp *tiaParser) declPred(ln int, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "pred"))
	if eq := strings.Index(rest, "="); eq >= 0 {
		name := strings.TrimSpace(rest[:eq])
		if err := tp.checkFresh(ln, name); err != nil {
			return err
		}
		val := strings.TrimSpace(rest[eq+1:])
		if val != "0" && val != "1" {
			return srcError(ln, "predicate initializer must be 0 or 1, got %q", val)
		}
		idx := len(tp.prog.preds)
		tp.prog.preds[name] = idx
		tp.prog.PredInit[idx] = val == "1"
		return nil
	}
	for _, n := range strings.Fields(rest) {
		if err := tp.checkFresh(ln, n); err != nil {
			return err
		}
		tp.prog.preds[n] = len(tp.prog.preds)
	}
	return nil
}

// resolve helpers; channel and register names may also be positional
// (in0, out3, r2, p5).
func positional(prefix, s string) (int, bool) {
	if !strings.HasPrefix(s, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(s[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (tp *tiaParser) inChan(s string) (int, bool) {
	if i, ok := tp.prog.ins[s]; ok {
		return i, true
	}
	return positional("in", s)
}

func (tp *tiaParser) outChan(s string) (int, bool) {
	if i, ok := tp.prog.outs[s]; ok {
		return i, true
	}
	return positional("out", s)
}

func (tp *tiaParser) reg(s string) (int, bool) {
	if i, ok := tp.prog.regs[s]; ok {
		return i, true
	}
	if _, taken := tp.prog.ins[s]; taken {
		return 0, false
	}
	return positional("r", s)
}

func (tp *tiaParser) pred(s string) (int, bool) {
	if i, ok := tp.prog.preds[s]; ok {
		return i, true
	}
	return positional("p", s)
}

func (tp *tiaParser) parseInst(ln int, line string) error {
	whenIdx := strings.Index(line, "when ")
	if whenIdx < 0 {
		return srcError(ln, "expected declaration or instruction, got %q", line)
	}
	label := strings.TrimSpace(line[:whenIdx])
	label = strings.TrimSuffix(label, ":")
	if label != "" && !ident(label) {
		return srcError(ln, "bad label %q", label)
	}
	rest := line[whenIdx+len("when "):]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return srcError(ln, "missing ':' after trigger")
	}
	condsText, bodyText := rest[:colon], rest[colon+1:]

	inst := isa.Instruction{Label: label}
	if err := tp.parseTrigger(ln, condsText, &inst.Trigger); err != nil {
		return err
	}

	parts := strings.Split(bodyText, ";")
	if err := tp.parseOperation(ln, strings.TrimSpace(parts[0]), &inst); err != nil {
		return err
	}
	for _, act := range parts[1:] {
		if err := tp.parseAction(ln, strings.TrimSpace(act), &inst); err != nil {
			return err
		}
	}
	tp.prog.Insts = append(tp.prog.Insts, inst)
	return nil
}

func (tp *tiaParser) parseTrigger(ln int, text string, tr *isa.Trigger) error {
	for _, tok := range strings.Fields(text) {
		if tok == "always" {
			continue
		}
		if strings.HasPrefix(tok, "!") {
			p, ok := tp.pred(tok[1:])
			if !ok {
				return srcError(ln, "unknown predicate %q", tok[1:])
			}
			tr.Preds = append(tr.Preds, isa.NotP(p))
			continue
		}
		if dot := strings.Index(tok, ".tag"); dot >= 0 {
			chName := tok[:dot]
			ch, ok := tp.inChan(chName)
			if !ok {
				return srcError(ln, "unknown input channel %q", chName)
			}
			cmp := tok[dot+len(".tag"):]
			switch {
			case strings.HasPrefix(cmp, "=="):
				tag, err := parseTag(cmp[2:])
				if err != nil {
					return srcError(ln, "%v", err)
				}
				tr.Inputs = append(tr.Inputs, isa.InTagEq(ch, tag))
			case strings.HasPrefix(cmp, "!="):
				tag, err := parseTag(cmp[2:])
				if err != nil {
					return srcError(ln, "%v", err)
				}
				tr.Inputs = append(tr.Inputs, isa.InTagNe(ch, tag))
			default:
				return srcError(ln, "bad tag condition %q", tok)
			}
			continue
		}
		if ch, ok := tp.inChan(tok); ok {
			tr.Inputs = append(tr.Inputs, isa.InReady(ch))
			continue
		}
		if p, ok := tp.pred(tok); ok {
			tr.Preds = append(tr.Preds, isa.P(p))
			continue
		}
		return srcError(ln, "unknown trigger condition %q", tok)
	}
	return nil
}

func (tp *tiaParser) parseOperation(ln int, text string, inst *isa.Instruction) error {
	if text == "" {
		return srcError(ln, "missing operation")
	}
	sp := strings.IndexAny(text, " \t")
	mnemonic, operandText := text, ""
	if sp >= 0 {
		mnemonic, operandText = text[:sp], text[sp+1:]
	}
	op, ok := isa.OpcodeByName(mnemonic)
	if !ok {
		return srcError(ln, "unknown opcode %q", mnemonic)
	}
	inst.Op = op
	operands := splitOperands(operandText)
	arity := op.Arity()
	if len(operands) < arity {
		return srcError(ln, "%s needs %d sources, got %d operands", mnemonic, arity, len(operands))
	}
	ndst := len(operands) - arity
	for _, d := range operands[:ndst] {
		if d == "_" {
			continue
		}
		dst, err := tp.parseDst(ln, d)
		if err != nil {
			return err
		}
		inst.Dsts = append(inst.Dsts, dst)
	}
	for i, s := range operands[ndst:] {
		src, err := tp.parseSrc(ln, s)
		if err != nil {
			return err
		}
		inst.Srcs[i] = src
	}
	return nil
}

func (tp *tiaParser) parseDst(ln int, s string) (isa.Dst, error) {
	if strings.HasPrefix(s, "p:") {
		p, ok := tp.pred(s[2:])
		if !ok {
			return isa.Dst{}, srcError(ln, "unknown predicate %q", s[2:])
		}
		return isa.DPred(p), nil
	}
	name, tag := s, isa.TagData
	if h := strings.Index(s, "#"); h >= 0 {
		t, err := parseTag(s[h+1:])
		if err != nil {
			return isa.Dst{}, srcError(ln, "%v", err)
		}
		name, tag = s[:h], t
	}
	if ch, ok := tp.outChan(name); ok {
		return isa.DOut(ch, tag), nil
	}
	if tag != isa.TagData {
		return isa.Dst{}, srcError(ln, "tag on non-channel destination %q", s)
	}
	if r, ok := tp.reg(name); ok {
		return isa.DReg(r), nil
	}
	return isa.Dst{}, srcError(ln, "unknown destination %q", s)
}

func (tp *tiaParser) parseSrc(ln int, s string) (isa.Src, error) {
	if strings.HasPrefix(s, "#") {
		v, err := parseWord(s[1:])
		if err != nil {
			return isa.Src{}, srcError(ln, "%v", err)
		}
		return isa.Imm(v), nil
	}
	if strings.HasSuffix(s, ".tag") {
		ch, ok := tp.inChan(strings.TrimSuffix(s, ".tag"))
		if !ok {
			return isa.Src{}, srcError(ln, "unknown input channel %q", s)
		}
		return isa.InTag(ch), nil
	}
	if ch, ok := tp.inChan(s); ok {
		return isa.In(ch), nil
	}
	if r, ok := tp.reg(s); ok {
		return isa.Reg(r), nil
	}
	return isa.Src{}, srcError(ln, "unknown source %q", s)
}

func (tp *tiaParser) parseAction(ln int, act string, inst *isa.Instruction) error {
	fields := strings.Fields(act)
	if len(fields) != 2 {
		return srcError(ln, "bad action %q", act)
	}
	switch fields[0] {
	case "deq":
		ch, ok := tp.inChan(fields[1])
		if !ok {
			return srcError(ln, "unknown input channel %q", fields[1])
		}
		inst.Deq = append(inst.Deq, ch)
	case "set":
		p, ok := tp.pred(fields[1])
		if !ok {
			return srcError(ln, "unknown predicate %q", fields[1])
		}
		inst.PredUpdates = append(inst.PredUpdates, isa.SetP(p))
	case "clr":
		p, ok := tp.pred(fields[1])
		if !ok {
			return srcError(ln, "unknown predicate %q", fields[1])
		}
		inst.PredUpdates = append(inst.PredUpdates, isa.ClrP(p))
	default:
		return srcError(ln, "unknown action %q", fields[0])
	}
	return nil
}
