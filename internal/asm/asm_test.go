package asm

import (
	"strings"
	"testing"

	"tia/internal/fabric"
	"tia/internal/isa"
	"tia/internal/pcpe"
	"tia/internal/pe"
)

const tiaMergeText = `
in a b
out o
pred sel cvalid adone bdone

cmp:    when !cvalid !adone !bdone a.tag==0 b.tag==0 : leu p:sel, a, b ; set cvalid
sendA:  when cvalid sel : mov o, a ; deq a ; clr cvalid
sendB:  when cvalid !sel : mov o, b ; deq b ; clr cvalid
eodA:   when !cvalid !adone a.tag==eod : nop ; deq a ; set adone
eodB:   when !cvalid !bdone b.tag==eod : nop ; deq b ; set bdone
drainA: when bdone !adone a.tag==0 : mov o, a ; deq a
drainB: when adone !bdone b.tag==0 : mov o, b ; deq b
fin:    when adone bdone : halt o#eod
`

const pcMergeText = `
in a b
out o

loop:    bne a.tag, #0, a_eod
         bne b.tag, #0, b_eod
         leu r0, a, b
         beq r0, #0, take_b
         mov o, a.pop
         jmp loop
take_b:  mov o, b.pop
         jmp loop
a_eod:   deq a
a_drain: bne b.tag, #0, b_last
         mov o, b.pop
         jmp a_drain
b_last:  deq b
         jmp fin
b_eod:   deq b
b_drain: bne a.tag, #0, a_last
         mov o, a.pop
         jmp b_drain
a_last:  deq a
fin:     halt o#eod
`

// runMergeFabric wires sources/sink around the given element and returns
// the sink's words and the cycle count.
func runMergeFabric(t *testing.T, elem fabric.Element, left, right []isa.Word) ([]isa.Word, int64) {
	t.Helper()
	f := fabric.New(fabric.DefaultConfig())
	a := fabric.NewWordSource("srcA", left, true)
	b := fabric.NewWordSource("srcB", right, true)
	snk := fabric.NewSink("snk")
	f.Add(a)
	f.Add(b)
	f.Add(elem)
	f.Add(snk)
	ip := elem.(fabric.InPort)
	op := elem.(fabric.OutPort)
	f.Wire(a, 0, ip, 0)
	f.Wire(b, 0, ip, 1)
	f.Wire(op, 0, snk, 0)
	res, err := f.Run(100000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return snk.Words(), res.Cycles
}

func TestParsedTIAMergeMatchesBuiltin(t *testing.T) {
	left := []isa.Word{1, 5, 6, 30}
	right := []isa.Word{2, 3, 7, 8, 9}

	prog, err := ParseTIA("merge", tiaMergeText)
	if err != nil {
		t.Fatalf("ParseTIA: %v", err)
	}
	if len(prog.Insts) != 8 {
		t.Fatalf("parsed %d instructions, want 8", len(prog.Insts))
	}
	parsed, err := prog.Build(isa.DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	builtin, err := pe.New("merge", isa.DefaultConfig(), pe.MergeProgram())
	if err != nil {
		t.Fatal(err)
	}

	gotP, cycP := runMergeFabric(t, parsed, left, right)
	gotB, cycB := runMergeFabric(t, builtin, left, right)
	if len(gotP) != len(gotB) {
		t.Fatalf("parsed merge %v, builtin %v", gotP, gotB)
	}
	for i := range gotP {
		if gotP[i] != gotB[i] {
			t.Fatalf("parsed merge %v, builtin %v", gotP, gotB)
		}
	}
	if cycP != cycB {
		t.Errorf("parsed merge took %d cycles, builtin %d (programs should be identical)", cycP, cycB)
	}
}

func TestParsedPCMergeMatchesBuiltin(t *testing.T) {
	left := []isa.Word{10, 20, 30}
	right := []isa.Word{5, 15, 25, 35}

	prog, err := ParsePC("merge", pcMergeText)
	if err != nil {
		t.Fatalf("ParsePC: %v", err)
	}
	parsed, err := prog.Build(pcpe.DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	builtin, err := pcpe.New("merge", pcpe.DefaultConfig(), pcpe.MergeProgram())
	if err != nil {
		t.Fatal(err)
	}
	gotP, cycP := runMergeFabric(t, parsed, left, right)
	gotB, cycB := runMergeFabric(t, builtin, left, right)
	if len(gotP) != len(gotB) {
		t.Fatalf("parsed %v, builtin %v", gotP, gotB)
	}
	for i := range gotP {
		if gotP[i] != gotB[i] {
			t.Fatalf("parsed %v, builtin %v", gotP, gotB)
		}
	}
	if cycP != cycB {
		t.Errorf("parsed PC merge took %d cycles, builtin %d", cycP, cycB)
	}
}

func TestParseTIAErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"no instructions", "in a\nout o\n"},
		{"unknown opcode", "in a\nout o\nx: when a : bogus o, a"},
		{"unknown channel", "out o\nx: when q : mov o, #1"},
		{"missing colon", "in a\nout o\nx: when a mov o, a"},
		{"dup name", "in a\nreg a\nx: when always : nop"},
		{"bad pred init", "pred p = 7\nx: when always : nop"},
		{"unknown dest", "in a\nx: when a : mov zz, a"},
		{"unknown action", "in a\nout o\nx: when a : mov o, a ; zap a"},
		{"bad tag cond", "in a\nout o\nx: when a.tag>3 : mov o, a"},
		{"too few operands", "in a\nout o\nx: when a : add o"},
	}
	for _, c := range cases {
		if _, err := ParseTIA("t", c.body); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParsePCErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"no instructions", "in a\nout o\n"},
		{"unknown mnemonic", "bogus r0, r1"},
		{"unknown target", "jmp nowhere"},
		{"bad deq", "deq zz"},
		{"branch operand count", "x: beq r0, x"},
		{"unknown source", "mov r0, zz"},
	}
	for _, c := range cases {
		if _, err := ParsePC("t", c.body); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseTIAInitializers(t *testing.T) {
	body := `
out o
reg x = 42
reg y = -1
pred go = 1
emit: when go : mov o, x ; clr go
stop: when !go : halt o#eod
`
	prog, err := ParseTIA("t", body)
	if err != nil {
		t.Fatal(err)
	}
	if prog.RegInit[0] != 42 || prog.RegInit[1] != 0xFFFFFFFF {
		t.Fatalf("RegInit = %v", prog.RegInit)
	}
	if !prog.PredInit[0] {
		t.Fatalf("PredInit = %v", prog.PredInit)
	}
	p, err := prog.Build(isa.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Reg(0) != 42 || !p.Pred(0) {
		t.Fatal("Build did not apply initial values")
	}
}

func TestParseHexAndNegativeImmediates(t *testing.T) {
	body := `
out o
a: when always : mov o, #0xFF
b: when always : mov o, #-2
`
	prog, err := ParseTIA("t", body)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Insts[0].Srcs[0].Imm != 0xFF {
		t.Errorf("hex imm = %#x", prog.Insts[0].Srcs[0].Imm)
	}
	if prog.Insts[1].Srcs[0].Imm != 0xFFFFFFFE {
		t.Errorf("negative imm = %#x", prog.Insts[1].Srcs[0].Imm)
	}
}

const mergeNetlist = `
// Merge two sorted streams through a triggered PE.
config cap 4 lat 0
source sa : 1 3 5 7 eod
source sb : 2 4 6 8 eod
sink so

pe merge
` + tiaMergeText + `
end

wire sa.0 -> merge.a
wire sb.0 -> merge.b
wire merge.o -> so.0
`

func TestNetlistMerge(t *testing.T) {
	nl, err := ParseNetlist(mergeNetlist, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatalf("ParseNetlist: %v", err)
	}
	res, err := nl.Fabric.Run(10000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("netlist run did not complete")
	}
	got := nl.Sinks["so"].Words()
	want := []isa.Word{1, 2, 3, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("merged %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v want %v", got, want)
		}
	}
}

const scratchpadNetlist = `
source addrs : 2 0 1
sink resp count 3
scratchpad tbl 4 : 100 101 102 103
wire addrs.0 -> tbl.raddr
wire tbl.rdata -> resp.0
`

func TestNetlistScratchpad(t *testing.T) {
	nl, err := ParseNetlist(scratchpadNetlist, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatalf("ParseNetlist: %v", err)
	}
	if _, err := nl.Fabric.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := nl.Sinks["resp"].Words()
	want := []isa.Word{102, 100, 101}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("responses %v want %v", got, want)
		}
	}
}

func TestNetlistErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown directive", "frobnicate x"},
		{"unterminated block", "pe x\nin a\n"},
		{"wire to unknown", "source s : 1\nwire s.0 -> nowhere.0"},
		{"wire from unknown", "sink k\nwire nowhere.0 -> k.0"},
		{"bad port", mergeNetlist + "\nwire merge.zz -> so.0"},
		{"dup element", "sink k\nsink k"},
		{"bad source token", "source s : zz"},
		{"bad sink count", "sink k count x"},
		{"bad scratchpad size", "scratchpad m zero"},
		{"place unknown", "place ghost 0 0"},
		{"sink port out of range", "source s : 1\nsink k\nwire s.0 -> k.1"},
		{"source port out of range", "source s : 1\nsink k\nwire s.3 -> k.0"},
		{"double connection", "source s : 1\nsink k\nwire s.0 -> k.0\nwire s.0 -> k.0"},
	}
	for _, c := range cases {
		if _, err := ParseNetlist(c.src, isa.DefaultConfig(), pcpe.DefaultConfig()); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNetlistWireOptions(t *testing.T) {
	src := `
source s : 1 2 3
sink k count 3
wire s.0 -> k.0 cap 9 lat 2
`
	nl, err := ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chans := nl.Fabric.Channels()
	if len(chans) != 1 || chans[0].Cap() != 9 || chans[0].Latency() != 2 {
		t.Fatalf("wire options not applied: %+v", chans)
	}
}

func TestNetlistPCPEBlock(t *testing.T) {
	src := `
source s : 5 eod
sink k

pcpe fwd
in a
out o
loop: bne a.tag, #0, fin
      mov o, a.pop
      jmp loop
fin:  halt o#eod
end

wire s.0 -> fwd.a
wire fwd.o -> k.0
`
	nl, err := ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Fabric.Run(1000); err != nil {
		t.Fatal(err)
	}
	got := nl.Sinks["k"].Words()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("forwarded %v, want [5]", got)
	}
}

func TestParseTokenForms(t *testing.T) {
	tok, err := parseToken("7#3")
	if err != nil || tok.Data != 7 || tok.Tag != 3 {
		t.Fatalf("parseToken(7#3) = %v, %v", tok, err)
	}
	if _, err := parseToken("x#1"); err == nil {
		t.Error("bad tagged token accepted")
	}
	if _, err := parseToken("1#zz"); err == nil {
		t.Error("bad tag accepted")
	}
}

func TestStripCommentAndIdent(t *testing.T) {
	if stripComment("  foo // bar") != "foo" {
		t.Error("stripComment failed")
	}
	for s, want := range map[string]bool{"abc": true, "_x1": true, "1ab": false, "a-b": false, "": false} {
		if ident(s) != want {
			t.Errorf("ident(%q) = %v", s, ident(s))
		}
	}
	if !strings.Contains(srcError(3, "boom %d", 7).Error(), "line 3: boom 7") {
		t.Error("srcError format")
	}
}

func TestNetlistPEOptions(t *testing.T) {
	src := `
source s : 1 eod
sink k

pe big insts=32 preds=12
in a
out o
fwd: when a.tag==0 : mov o, a ; deq a ; set p11
fin: when a.tag==eod p11 : halt o#eod ; deq a
end

wire s.0 -> big.a
wire big.o -> k.0
`
	nl, err := ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Fabric.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := nl.Sinks["k"].Words(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("forwarded %v", got)
	}
	cases := []string{
		"pe x zap=2\nr: when always : nop\nend",
		"pe x insts=zero\nr: when always : nop\nend",
		"pcpe x insts=4\nhalt\nend",
	}
	for _, c := range cases {
		if _, err := ParseNetlist(c, isa.DefaultConfig(), pcpe.DefaultConfig()); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestNetlistScratchpadLatency(t *testing.T) {
	src := `
source addrs : 0 1 2
sink resp count 3
scratchpad tbl 4 lat 5 : 9 8 7 6
wire addrs.0 -> tbl.raddr
wire tbl.rdata -> resp.0
`
	nl, err := ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := nl.Fabric.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	got := nl.Sinks["resp"].Words()
	if len(got) != 3 || got[0] != 9 || got[1] != 8 || got[2] != 7 {
		t.Fatalf("responses %v", got)
	}
	// The same fabric without latency completes sooner.
	nl2, err := ParseNetlist(`
source addrs : 0 1 2
sink resp count 3
scratchpad tbl 4 : 9 8 7 6
wire addrs.0 -> tbl.raddr
wire tbl.rdata -> resp.0
`, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := nl2.Fabric.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= res2.Cycles {
		t.Errorf("latency 5 (%d cycles) not slower than latency 0 (%d)", res.Cycles, res2.Cycles)
	}
	if _, err := ParseNetlist("scratchpad m 4 lat x", isa.DefaultConfig(), pcpe.DefaultConfig()); err == nil {
		t.Error("bad option value accepted")
	}
	if _, err := ParseNetlist("scratchpad m 4 zap 1", isa.DefaultConfig(), pcpe.DefaultConfig()); err == nil {
		t.Error("unknown option accepted")
	}
}
