package asm

import (
	"reflect"
	"testing"

	"tia/internal/gpp"
	"tia/internal/isa"
)

const gppSumText = `
// Sum mem[0..4] into r1, store at mem[10].
        mov r1, #0
        mov r2, #0
        mov r3, #5
loop:   bgeu r2, r3, done
        lw r4, r2, #0
        add r1, r1, r4
        add r2, r2, #1
        jmp loop
done:   sw r1, r2, #5
        halt
`

func TestParseGPPSumRuns(t *testing.T) {
	prog, err := ParseGPP("sum", gppSumText)
	if err != nil {
		t.Fatal(err)
	}
	core, err := gpp.New(gpp.DefaultConfig(32), prog)
	if err != nil {
		t.Fatal(err)
	}
	core.LoadMem(0, []isa.Word{1, 2, 3, 4, 5})
	if err := core.Run(1000); err != nil {
		t.Fatal(err)
	}
	if core.Reg(1) != 15 {
		t.Fatalf("sum = %d", core.Reg(1))
	}
	if core.Mem(10) != 15 {
		t.Fatalf("mem[10] = %d", core.Mem(10))
	}
}

func TestFormatGPPRoundTrip(t *testing.T) {
	orig, err := ParseGPP("sum", gppSumText)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatGPP(orig)
	back, err := ParseGPP("rt", text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Fatalf("round trip changed program:\n%s", text)
	}
}

func TestParseGPPErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"empty", ""},
		{"unknown mnemonic", "frob r1, r2"},
		{"unknown target", "jmp nowhere"},
		{"bad register", "mov rx, #1"},
		{"lw operands", "lw r1, r2"},
		{"sw offset", "sw r1, r2, r3"},
		{"branch operands", "x: beq r1, x"},
		{"alu operand count", "add r1, r2"},
	}
	for _, c := range cases {
		if _, err := ParseGPP("t", c.body); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
