package asm

import (
	"fmt"
	"strings"

	"tia/internal/isa"
	"tia/internal/pcpe"
)

// FormatTIA renders a triggered program in the parseable dialect using
// positional names (in0, out2, r3, p5), so that
// ParseTIA(FormatTIA(prog)) reproduces the program. It is the
// disassembler counterpart of ParseTIA.
func FormatTIA(prog []isa.Instruction) string {
	var b strings.Builder
	nIn, nOut := 0, 0
	for i := range prog {
		for _, c := range prog[i].ImplicitInputs() {
			if c+1 > nIn {
				nIn = c + 1
			}
		}
		for _, c := range prog[i].OutputChannels() {
			if c+1 > nOut {
				nOut = c + 1
			}
		}
	}
	if nIn > 0 {
		fmt.Fprint(&b, "in")
		for i := 0; i < nIn; i++ {
			fmt.Fprintf(&b, " in%d", i)
		}
		fmt.Fprintln(&b)
	}
	if nOut > 0 {
		fmt.Fprint(&b, "out")
		for i := 0; i < nOut; i++ {
			fmt.Fprintf(&b, " out%d", i)
		}
		fmt.Fprintln(&b)
	}
	for i := range prog {
		b.WriteString(formatTIAInst(&prog[i]))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatTIAInst(in *isa.Instruction) string {
	var b strings.Builder
	if in.Label != "" && ident(in.Label) {
		fmt.Fprintf(&b, "%s: ", in.Label)
	}
	b.WriteString("when ")
	if len(in.Trigger.Preds) == 0 && len(in.Trigger.Inputs) == 0 {
		b.WriteString("always")
	} else {
		parts := make([]string, 0, len(in.Trigger.Preds)+len(in.Trigger.Inputs))
		for _, p := range in.Trigger.Preds {
			parts = append(parts, p.String())
		}
		for _, c := range in.Trigger.Inputs {
			parts = append(parts, c.String())
		}
		b.WriteString(strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, " : %s", in.Op)
	operands := make([]string, 0, len(in.Dsts)+2)
	for _, d := range in.Dsts {
		if d.Kind == isa.DstPred {
			operands = append(operands, fmt.Sprintf("p:p%d", d.Index))
		} else {
			operands = append(operands, d.String())
		}
	}
	if len(in.Dsts) == 0 && in.Op.Arity() > 0 {
		operands = append(operands, "_")
	}
	for i := 0; i < in.Op.Arity(); i++ {
		operands = append(operands, in.Srcs[i].String())
	}
	if len(operands) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(operands, ", "))
	}
	for _, ch := range in.Deq {
		fmt.Fprintf(&b, " ; deq in%d", ch)
	}
	for _, u := range in.PredUpdates {
		fmt.Fprintf(&b, " ; %s", u)
	}
	return b.String()
}

// FormatPC renders a sequential program in the parseable dialect, the
// disassembler counterpart of ParsePC.
func FormatPC(prog []pcpe.Inst) string {
	var b strings.Builder
	nIn, nOut := 0, 0
	note := func(s pcpe.Src) {
		if (s.Kind == pcpe.SrcChan || s.Kind == pcpe.SrcChanTag) && s.Index+1 > nIn {
			nIn = s.Index + 1
		}
	}
	for i := range prog {
		in := &prog[i]
		note(in.Srcs[0])
		note(in.Srcs[1])
		if in.Kind == pcpe.KindDeq && in.Chan+1 > nIn {
			nIn = in.Chan + 1
		}
		for _, d := range in.Dsts {
			if d.Kind == pcpe.DstOut && d.Index+1 > nOut {
				nOut = d.Index + 1
			}
		}
	}
	if nIn > 0 {
		fmt.Fprint(&b, "in")
		for i := 0; i < nIn; i++ {
			fmt.Fprintf(&b, " in%d", i)
		}
		fmt.Fprintln(&b)
	}
	if nOut > 0 {
		fmt.Fprint(&b, "out")
		for i := 0; i < nOut; i++ {
			fmt.Fprintf(&b, " out%d", i)
		}
		fmt.Fprintln(&b)
	}
	for i := range prog {
		b.WriteString(prog[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}
