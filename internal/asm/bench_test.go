package asm

import (
	"testing"

	"tia/internal/isa"
	"tia/internal/pcpe"
)

// BenchmarkParseTIA measures assembling the merge kernel.
func BenchmarkParseTIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseTIA("merge", tiaMergeText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseNetlist measures building the full merge fabric from text.
func BenchmarkParseNetlist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseNetlist(mergeNetlist, isa.DefaultConfig(), pcpe.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
