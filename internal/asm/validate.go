package asm

import (
	"fmt"
	"strings"
)

// Diagnostic is one structural problem found in a netlist source, with
// the 1-based source line it was found on (0 when the problem has no
// single line, e.g. a program-level error that carries its own position).
type Diagnostic struct {
	Line int
	Msg  string
}

func (d Diagnostic) String() string {
	if d.Line > 0 {
		return fmt.Sprintf("line %d: %s", d.Line, d.Msg)
	}
	return d.Msg
}

// maxDiagnostics bounds how many problems one validation pass reports;
// a hostile input full of errors should not cost memory proportional to
// its error count.
const maxDiagnostics = 20

// Diagnostics is the typed multi-error a netlist validation pass
// returns. A single-entry Diagnostics renders exactly like the parser's
// historical one-error form ("line N: msg"), so callers that match on
// error text keep working.
type Diagnostics []Diagnostic

func (ds Diagnostics) Error() string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

// add appends a diagnostic unless the report is already full; the last
// slot is replaced by a truncation marker when the cap is hit.
func (ds *Diagnostics) add(line int, format string, args ...any) {
	if len(*ds) >= maxDiagnostics {
		return
	}
	d := Diagnostic{Line: line, Msg: fmt.Sprintf(format, args...)}
	if len(*ds) == maxDiagnostics-1 {
		d = Diagnostic{Msg: "too many errors; further diagnostics suppressed"}
	}
	*ds = append(*ds, d)
}

func (ds Diagnostics) errOrNil() error {
	if len(ds) == 0 {
		return nil
	}
	return ds
}

// Census is the resource footprint of a netlist, computed by validation
// before anything is allocated. A resource governor (internal/limits)
// uses it to admit or reject a job before construction; the counts are
// exact for elements and channel capacities and conservative (pre-clamp)
// for fabric defaults.
type Census struct {
	Elements    int // total fabric elements
	Sources     int
	Sinks       int
	PEs         int // triggered PEs
	PCPEs       int // program-counter PEs
	Scratchpads int

	Channels        int // wires declared
	ChannelTokens   int // sum of effective channel capacities, in tokens
	ScratchpadWords int
	SourceTokens    int // total tokens across all source streams
	Instructions    int // total PE program instructions
}
