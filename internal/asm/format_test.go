package asm

import (
	"math/rand"
	"reflect"
	"testing"

	"tia/internal/isa"
	"tia/internal/pcpe"
)

// normalizeTIA clears representational slack before comparison: nil vs
// empty slices and labels stripped of non-identifier noise.
func normalizeTIA(prog []isa.Instruction) []isa.Instruction {
	out := make([]isa.Instruction, len(prog))
	for i, in := range prog {
		if len(in.Trigger.Preds) == 0 {
			in.Trigger.Preds = nil
		}
		if len(in.Trigger.Inputs) == 0 {
			in.Trigger.Inputs = nil
		}
		if len(in.Dsts) == 0 {
			in.Dsts = nil
		}
		if len(in.Deq) == 0 {
			in.Deq = nil
		}
		if len(in.PredUpdates) == 0 {
			in.PredUpdates = nil
		}
		out[i] = in
	}
	return out
}

func TestFormatTIAMergeRoundTrip(t *testing.T) {
	// The builtin merge program must survive format -> parse intact.
	orig := mergeForFormatTest()
	text := FormatTIA(orig)
	prog, err := ParseTIA("rt", text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	got := normalizeTIA(prog.Insts)
	want := normalizeTIA(orig)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed program:\n%s\ngot  %+v\nwant %+v", text, got, want)
	}
}

// mergeForFormatTest returns pe.MergeProgram without importing pe (which
// would create an import cycle through asm's tests? no — but keep asm's
// test surface self-contained): a hand copy of two representative
// instructions plus edge cases.
func mergeForFormatTest() []isa.Instruction {
	return []isa.Instruction{
		{
			Label: "cmp",
			Trigger: isa.When(
				[]isa.PredLit{isa.NotP(1), isa.NotP(2)},
				[]isa.InputCond{isa.InTagEq(0, isa.TagData), isa.InTagNe(1, 3)},
			),
			Op:          isa.OpLEU,
			Srcs:        [2]isa.Src{isa.In(0), isa.In(1)},
			Dsts:        []isa.Dst{isa.DPred(0)},
			PredUpdates: []isa.PredUpdate{isa.SetP(1)},
		},
		{
			Label:   "send",
			Trigger: isa.When([]isa.PredLit{isa.P(1), isa.P(0)}, nil),
			Op:      isa.OpMov,
			Srcs:    [2]isa.Src{isa.In(0), {}},
			Dsts:    []isa.Dst{isa.DOut(0, isa.TagData), isa.DReg(3)},
			Deq:     []int{0},
			PredUpdates: []isa.PredUpdate{
				isa.ClrP(1),
			},
		},
		{
			Label:   "tagread",
			Trigger: isa.When(nil, []isa.InputCond{isa.InReady(2)}),
			Op:      isa.OpAdd,
			Srcs:    [2]isa.Src{isa.InTag(2), isa.Imm(0xFFFF00FF)},
			Dsts:    []isa.Dst{isa.DReg(0)},
			Deq:     []int{2},
		},
		{
			Label:   "fin",
			Trigger: isa.When([]isa.PredLit{isa.P(2)}, nil),
			Op:      isa.OpHalt,
			Dsts:    []isa.Dst{isa.DOut(1, isa.TagEOD)},
		},
		{
			Label: "bare",
			Op:    isa.OpNop,
		},
	}
}

// Property: random valid instructions survive a format/parse round trip.
func TestFormatTIARoundTripProperty(t *testing.T) {
	cfg := isa.DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	randInst := func(label string) isa.Instruction {
		in := isa.Instruction{Label: label}
		ops := []isa.Opcode{isa.OpNop, isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpXor,
			isa.OpRotr, isa.OpLTU, isa.OpEQ, isa.OpMin}
		in.Op = ops[rng.Intn(len(ops))]
		seenP := map[int]bool{}
		for j := rng.Intn(3); j > 0; j-- {
			idx := rng.Intn(cfg.NumPreds)
			if seenP[idx] {
				continue
			}
			seenP[idx] = true
			in.Trigger.Preds = append(in.Trigger.Preds, isa.PredLit{Index: idx, Value: rng.Intn(2) == 0})
		}
		if rng.Intn(2) == 0 {
			ch := rng.Intn(cfg.NumIn)
			switch rng.Intn(3) {
			case 0:
				in.Trigger.Inputs = append(in.Trigger.Inputs, isa.InReady(ch))
			case 1:
				in.Trigger.Inputs = append(in.Trigger.Inputs, isa.InTagEq(ch, isa.Tag(rng.Intn(8))))
			default:
				in.Trigger.Inputs = append(in.Trigger.Inputs, isa.InTagNe(ch, isa.Tag(rng.Intn(8))))
			}
		}
		randSrc := func() isa.Src {
			switch rng.Intn(4) {
			case 0:
				return isa.Reg(rng.Intn(cfg.NumRegs))
			case 1:
				return isa.Imm(isa.Word(rng.Uint32()))
			case 2:
				return isa.In(rng.Intn(cfg.NumIn))
			default:
				return isa.InTag(rng.Intn(cfg.NumIn))
			}
		}
		for i := 0; i < in.Op.Arity(); i++ {
			in.Srcs[i] = randSrc()
		}
		usedOut := map[int]bool{}
		usedPredDst := map[int]bool{}
		for j := rng.Intn(3); j > 0; j-- {
			switch rng.Intn(3) {
			case 0:
				in.Dsts = append(in.Dsts, isa.DReg(rng.Intn(cfg.NumRegs)))
			case 1:
				ch := rng.Intn(cfg.NumOut)
				if usedOut[ch] {
					continue
				}
				usedOut[ch] = true
				in.Dsts = append(in.Dsts, isa.DOut(ch, isa.Tag(rng.Intn(8))))
			default:
				p := rng.Intn(cfg.NumPreds)
				if usedPredDst[p] {
					continue
				}
				usedPredDst[p] = true
				in.Dsts = append(in.Dsts, isa.DPred(p))
			}
		}
		if rng.Intn(2) == 0 {
			in.Deq = append(in.Deq, rng.Intn(cfg.NumIn))
		}
		for j := rng.Intn(2); j > 0; j-- {
			p := rng.Intn(cfg.NumPreds)
			if usedPredDst[p] {
				continue
			}
			usedPredDst[p] = true
			if rng.Intn(2) == 0 {
				in.PredUpdates = append(in.PredUpdates, isa.SetP(p))
			} else {
				in.PredUpdates = append(in.PredUpdates, isa.ClrP(p))
			}
		}
		return in
	}

	for trial := 0; trial < 200; trial++ {
		var prog []isa.Instruction
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			in := randInst(labelName(i))
			if cfg.Validate(&in) != nil {
				continue // skip the occasional invalid draw
			}
			prog = append(prog, in)
		}
		if len(prog) == 0 {
			continue
		}
		text := FormatTIA(prog)
		parsed, err := ParseTIA("rt", text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		if !reflect.DeepEqual(normalizeTIA(parsed.Insts), normalizeTIA(prog)) {
			t.Fatalf("trial %d: round trip changed program:\n%s", trial, text)
		}
	}
}

func labelName(i int) string {
	return string(rune('a'+i%26)) + "lbl"
}

func TestFormatPCRoundTrip(t *testing.T) {
	orig := pcpe.MergeProgram()
	text := FormatPC(orig)
	prog, err := ParsePC("rt", text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if len(prog.Insts) != len(orig) {
		t.Fatalf("length changed: %d vs %d\n%s", len(prog.Insts), len(orig), text)
	}
	for i := range orig {
		if !reflect.DeepEqual(normalizePCInst(prog.Insts[i]), normalizePCInst(orig[i])) {
			t.Fatalf("instruction %d changed:\n got %+v\nwant %+v\ntext:\n%s",
				i, prog.Insts[i], orig[i], text)
		}
	}
}

func normalizePCInst(in pcpe.Inst) pcpe.Inst {
	if len(in.Dsts) == 0 {
		in.Dsts = nil
	}
	return in
}
