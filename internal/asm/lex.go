// Package asm provides textual front-ends for programming the fabric:
//
//   - a triggered-instruction dialect ("pe" blocks) that compiles to
//     isa.Instruction programs,
//   - a sequential dialect ("pcpe" blocks) for the PC-style baseline,
//   - a netlist layer (sources, sinks, scratchpads, wires) that builds a
//     complete runnable fabric from one text file.
//
// The concrete syntax is line-oriented; see the package tests and the
// files under examples/ for working programs.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"tia/internal/isa"
)

// srcError annotates an error with its 1-based source line.
func srcError(line int, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

// stripComment removes a // comment and surrounding space.
func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseWord parses a decimal (possibly negative) or 0x-prefixed integer
// into a 32-bit word with two's-complement wraparound.
func parseWord(s string) (isa.Word, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("number %q exceeds 32 bits", s)
	}
	w := isa.Word(v)
	if neg {
		w = -w
	}
	return w, nil
}

// parseTag parses a tag literal, accepting "eod" for the conventional
// end-of-data tag.
func parseTag(s string) (isa.Tag, error) {
	if s == "eod" {
		return isa.TagEOD, nil
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("bad tag %q", s)
	}
	return isa.Tag(v), nil
}

// splitOperands splits a comma-separated operand list, tolerating empty
// input (no operands).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// ident reports whether s is a plausible identifier (letter or underscore
// followed by letters, digits, underscores).
func ident(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
