package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tia/internal/isa"
	"tia/internal/pcpe"
)

// FuzzParseTIA checks the triggered-dialect parser never panics and that
// anything it accepts also validates and re-parses after formatting.
func FuzzParseTIA(f *testing.F) {
	f.Add(tiaMergeText)
	f.Add("in a\nout o\nx: when a : mov o, a ; deq a")
	f.Add("reg r = 0x10\npred p = 1\ny: when p : add r, r, #-1 ; clr p")
	f.Add("when always : nop")
	f.Add(": when : :")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseTIA("fuzz", src)
		if err != nil {
			return
		}
		cfg := isa.DefaultConfig()
		if err := cfg.ValidateProgram(prog.Insts); err != nil {
			// The parser may accept programs that exceed architectural
			// limits (too many instructions / high positional indices);
			// Build must reject those, never panic.
			if _, berr := prog.Build(cfg); berr == nil {
				t.Fatalf("Build accepted invalid program: %v", err)
			}
			return
		}
		text := FormatTIA(prog.Insts)
		if _, err := ParseTIA("fuzz2", text); err != nil {
			t.Fatalf("formatter produced unparseable text: %v\n%s", err, text)
		}
	})
}

// FuzzParsePC checks the sequential-dialect parser never panics.
func FuzzParsePC(f *testing.F) {
	f.Add(pcMergeText)
	f.Add("loop: jmp loop")
	f.Add("in a\nout o\nl: mov o, a.pop\njmp l")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParsePC("fuzz", src)
		if err != nil {
			return
		}
		_, _ = prog.Build(pcpe.DefaultConfig())
	})
}

// FuzzParseNetlist checks the netlist layer never panics. The shipped
// example netlists seed the corpus: they exercise every declaration kind
// (sources, sinks, scratchpads, both PE dialects, wires) through real,
// runnable programs.
func FuzzParseNetlist(f *testing.F) {
	f.Add(mergeNetlist)
	f.Add(scratchpadNetlist)
	f.Add("source s : 1 2 3\nsink k count 3\nwire s.0 -> k.0")
	examples, err := os.ReadDir("../../examples/netlists")
	if err != nil {
		f.Fatalf("example netlists: %v", err)
	}
	for _, e := range examples {
		if !strings.HasSuffix(e.Name(), ".tia") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("../../examples/netlists", e.Name()))
		if err != nil {
			f.Fatalf("read %s: %v", e.Name(), err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
		if err != nil {
			return
		}
		// Anything that parses must be runnable (possibly to deadlock or
		// timeout, both of which are errors, not panics).
		_, _ = nl.Fabric.Run(200)
	})
}
