package faults

import (
	"fmt"

	"tia/internal/snapshot"
)

// SnapshotState implements fabric.Snapshotter: it serializes the
// injection counters and each channel site's PRNG position (run-time
// draws since Attach). Window schedules, window cursors and the
// per-cycle stall/freeze caches are not state: the schedules are
// redrawn deterministically by re-attaching the same plan, and the
// caches are refreshed from the cycle number on the next BeginCycle.
func (inj *Injector) SnapshotState(e *snapshot.Encoder) {
	e.I64(inj.counts.Jittered)
	e.I64(inj.counts.StallCycles)
	e.I64(inj.counts.FreezeCycles)
	e.I64(inj.counts.Flips)
	e.I64(inj.counts.Drops)
	e.I64(inj.counts.Dups)
	e.I64(inj.counts.DupsElided)
	e.Int(len(inj.chans))
	for _, s := range inj.chans {
		e.String(s.ch.Name())
		e.I64(s.src.draws)
	}
}

// RestoreState implements fabric.Snapshotter. The injector must be
// freshly attached with the same plan to the same fabric (so each site's
// generator sits at its post-attach position); restore then replays the
// recorded number of run-time draws, leaving every generator exactly
// where the checkpoint left it.
func (inj *Injector) RestoreState(d *snapshot.Decoder) error {
	inj.counts = Counts{
		Jittered:     d.I64(),
		StallCycles:  d.I64(),
		FreezeCycles: d.I64(),
		Flips:        d.I64(),
		Drops:        d.I64(),
		Dups:         d.I64(),
		DupsElided:   d.I64(),
	}
	n := d.Count()
	if d.Err() == nil && n != len(inj.chans) {
		return fmt.Errorf("faults: snapshot has %d channel sites, injector has %d (different plan?)", n, len(inj.chans))
	}
	for _, s := range inj.chans {
		name := d.String()
		draws := d.I64()
		if err := d.Err(); err != nil {
			return fmt.Errorf("faults: %w", err)
		}
		if name != s.ch.Name() {
			return fmt.Errorf("faults: snapshot site %q where %q expected (different plan or fabric?)", name, s.ch.Name())
		}
		if draws < 0 {
			return fmt.Errorf("faults: site %q has negative draw count %d", name, draws)
		}
		if s.src.draws != 0 {
			return fmt.Errorf("faults: site %q generator already advanced %d draws; restore needs a freshly attached injector", name, s.src.draws)
		}
		s.src.burn(draws)
		s.src.draws = draws
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	return nil
}
