package faults

import (
	"testing"

	"tia/internal/isa"
)

// rearmPlans are the two campaign plan shapes: timing (windows
// everywhere) and data (no windows, per-token draws only).
var rearmPlans = map[string]Plan{
	"timing": {JitterRate: 0.3, JitterMax: 5, Stalls: 2, StallMax: 9, Freezes: 1, FreezeMax: 7, To: 400},
	"data":   {FlipRate: 0.1, DropRate: 0.05, DupRate: 0.05},
}

// TestRearmMatchesAttach is the Rearm determinism contract: a reused
// fabric armed with Reset+Rearm for each seed must produce byte-identical
// tokens, cycle counts and injection counts to a fresh fabric with a
// fresh Attach of the same plan, for every seed in the sweep.
func TestRearmMatchesAttach(t *testing.T) {
	words := []isa.Word{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8}
	for name, base := range rearmPlans {
		t.Run(name, func(t *testing.T) {
			reused, snk := buildLine(words, true, 0, 4)
			var inj *Injector
			for seed := int64(100); seed < 116; seed++ {
				plan := base
				plan.Seed = seed

				fresh, freshSnk := buildLine(words, true, 0, 4)
				freshInj, err := Attach(fresh, plan)
				if err != nil {
					t.Fatalf("seed %d: Attach fresh: %v", seed, err)
				}
				wantRes, wantErr := fresh.Run(10_000)
				wantCnt := freshInj.Counts()

				reused.Reset()
				if inj == nil {
					if inj, err = Attach(reused, plan); err != nil {
						t.Fatalf("seed %d: Attach reused: %v", seed, err)
					}
				} else if err := inj.Rearm(plan); err != nil {
					t.Fatalf("seed %d: Rearm: %v", seed, err)
				}
				gotRes, gotErr := reused.Run(10_000)

				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("seed %d: err %v, want %v", seed, gotErr, wantErr)
				}
				if gotErr != nil && gotErr.Error() != wantErr.Error() {
					t.Fatalf("seed %d: err %q, want %q", seed, gotErr, wantErr)
				}
				if gotRes != wantRes {
					t.Errorf("seed %d: result %+v, want %+v", seed, gotRes, wantRes)
				}
				if got, want := snk.Tokens(), freshSnk.Tokens(); !tokensEqual(got, want) {
					t.Errorf("seed %d: tokens %v, want %v", seed, got, want)
				}
				if got := inj.Counts(); got != wantCnt {
					t.Errorf("seed %d: counts %+v, want %+v", seed, got, wantCnt)
				}
			}
		})
	}
}

// TestRearmRejectsShapeChanges pins the site-population guard: changing
// the Sites filter or toggling freezes requires a fresh Attach.
func TestRearmRejectsShapeChanges(t *testing.T) {
	f, _ := buildLine([]isa.Word{1, 2, 3}, true, 0, 4)
	inj, err := Attach(f, Plan{Seed: 1, FlipRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Rearm(Plan{Seed: 2, FlipRate: 0.1, Sites: "snk"}); err == nil {
		t.Error("Rearm accepted a Sites change")
	}
	if err := inj.Rearm(Plan{Seed: 2, Freezes: 1, FreezeMax: 3, To: 100}); err == nil {
		t.Error("Rearm accepted a freeze toggle")
	}
	if err := inj.Rearm(Plan{Seed: 2, FlipRate: 2}); err == nil {
		t.Error("Rearm accepted an invalid plan")
	}
	if err := inj.Rearm(Plan{Seed: 2, DropRate: 0.5}); err != nil {
		t.Errorf("Rearm rejected a rate-only change: %v", err)
	}
}
