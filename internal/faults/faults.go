// Package faults is a deterministic, seeded fault-injection layer for
// the spatial-fabric simulator. It perturbs a fully-built fabric through
// two narrow seams — channel fault hooks (channel.FaultHook) and the
// fabric's per-cycle injector (fabric.FaultInjector) — and can inject:
//
//   - timing faults: extra per-token wire latency jitter, transient
//     channel stalls (the wire freezes for a window of cycles), and
//     element freezes (an element is not stepped for a window of cycles);
//   - data faults: single-bit flips, dropped tokens and duplicated
//     tokens, applied as tokens leave the wire for the receiver FIFO.
//
// Every campaign is exactly reproducible: all randomness derives from the
// plan seed mixed with the site name, each site owns its generator, and
// draws are consumed only at per-site events (a token entering or leaving
// the wire) or precomputed at attach time (stall and freeze windows).
// Decisions therefore never depend on element or channel iteration
// order, which is what keeps dense and event-driven stepping bit-
// identical under the same plan — the differential tests assert it.
//
// The paper's latency-insensitivity claim becomes testable here: timing
// faults may change cycle counts but must never change results, while
// data faults feed the masked / detected / SDC / hang taxonomy (see
// internal/core's resilience campaigns).
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"tia/internal/channel"
	"tia/internal/fabric"
)

// DefaultHorizon bounds stall/freeze window starts when Plan.To is
// unset. Campaign drivers normally set To to the fault-free cycle count
// so windows land inside the run.
const DefaultHorizon = 1 << 16

// Plan describes one reproducible fault campaign configuration. The zero
// value (plus a seed) injects nothing; such a plan wraps every site with
// hooks that provably do not perturb the simulation.
type Plan struct {
	// Seed drives every random draw. Campaigns vary it per run.
	Seed int64
	// Sites is a substring filter on channel and element names; ""
	// matches every site.
	Sites string
	// From and To bound the active cycle window [From, To). To <= 0
	// means unbounded for per-token faults and From+DefaultHorizon for
	// window draws.
	From, To int64

	// JitterRate is the per-token probability of extra wire latency,
	// uniform in [1, JitterMax].
	JitterRate float64
	JitterMax  int
	// Stalls is the number of wire-freeze windows drawn per matched
	// channel, each lasting [1, StallMax] cycles.
	Stalls   int
	StallMax int
	// Freezes is the number of no-step windows drawn per matched
	// element, each lasting [1, FreezeMax] cycles.
	Freezes   int
	FreezeMax int

	// FlipRate is the per-delivered-token probability of a single-bit
	// flip in the data word (tags are never corrupted, so EOD framing
	// survives; drop an EOD to attack framing instead).
	FlipRate float64
	// DropRate is the per-delivered-token probability the token vanishes.
	DropRate float64
	// DupRate is the per-delivered-token probability the token is
	// enqueued twice (when a credit is spare; see channel.Dup).
	DupRate float64
}

// Timing reports whether the plan injects only timing faults (the class
// under which results must be byte-identical to a fault-free run).
func (p Plan) Timing() bool {
	return p.FlipRate == 0 && p.DropRate == 0 && p.DupRate == 0
}

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"JitterRate", p.JitterRate}, {"FlipRate", p.FlipRate},
		{"DropRate", p.DropRate}, {"DupRate", p.DupRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", r.name, r.v)
		}
	}
	if p.JitterRate > 0 && p.JitterMax < 1 {
		return fmt.Errorf("faults: JitterRate %g needs JitterMax >= 1", p.JitterRate)
	}
	if p.Stalls < 0 || p.Freezes < 0 {
		return fmt.Errorf("faults: negative window counts")
	}
	if p.Stalls > 0 && p.StallMax < 1 {
		return fmt.Errorf("faults: Stalls %d needs StallMax >= 1", p.Stalls)
	}
	if p.Freezes > 0 && p.FreezeMax < 1 {
		return fmt.Errorf("faults: Freezes %d needs FreezeMax >= 1", p.Freezes)
	}
	if p.To > 0 && p.To <= p.From {
		return fmt.Errorf("faults: empty cycle window [%d,%d)", p.From, p.To)
	}
	return nil
}

// Counts are the aggregate injection statistics of one attached run.
type Counts struct {
	Jittered     int64 // tokens given extra wire latency
	StallCycles  int64 // channel-cycles spent stalled with the wire non-empty
	FreezeCycles int64 // element-cycles spent frozen
	Flips        int64 // tokens with a data bit flipped
	Drops        int64 // tokens dropped
	Dups         int64 // tokens duplicated (the extra copy enqueued)
	DupsElided   int64 // duplications suppressed for lack of a credit
}

// Total is the number of discrete fault events injected.
func (c Counts) Total() int64 {
	return c.Jittered + c.StallCycles + c.FreezeCycles + c.Flips + c.Drops + c.Dups
}

// window is one [start, start+dur) perturbation interval.
type window struct {
	start, end int64
}

// drawWindows samples n windows with the given maximum duration inside
// [from, to), sorted by start.
func drawWindows(r *rand.Rand, n int, maxDur int, from, to int64) []window {
	return drawWindowsInto(nil, r, n, maxDur, from, to)
}

// drawWindowsInto is drawWindows appending into ws (rewound to empty), so
// a Rearm can redraw a site's schedule without allocating once the slice
// has grown to the plan's window count. The draw sequence is identical to
// drawWindows.
func drawWindowsInto(ws []window, r *rand.Rand, n int, maxDur int, from, to int64) []window {
	ws = ws[:0]
	span := to - from
	if n <= 0 || span <= 0 {
		return ws
	}
	for i := 0; i < n; i++ {
		start := from + r.Int63n(span)
		dur := int64(1 + r.Intn(maxDur))
		ws = append(ws, window{start: start, end: start + dur})
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].start != ws[j].start {
			return ws[i].start < ws[j].start
		}
		return ws[i].end < ws[j].end
	})
	return ws
}

// covers reports whether any window contains cycle; idx advances
// monotonically with the cycle, so the amortized cost is O(1).
func covers(ws []window, idx *int, cycle int64) bool {
	for *idx < len(ws) && ws[*idx].end <= cycle {
		*idx++
	}
	for i := *idx; i < len(ws) && ws[i].start <= cycle; i++ {
		if cycle < ws[i].end {
			return true
		}
	}
	return false
}

// chanSite is one channel's fault state; it implements channel.FaultHook.
type chanSite struct {
	inj    *Injector
	ch     *channel.Channel
	rng    *rand.Rand
	src    *countedSource // rng's underlying source, for checkpointing
	hash   int64          // fnv of the site string, cached for Rearm reseeding
	stalls []window
	widx   int
	// stalledNow caches the per-cycle stall decision (set by BeginCycle).
	stalledNow bool
}

// SendDelay implements channel.FaultHook.
func (s *chanSite) SendDelay(channel.Token) int {
	p := &s.inj.plan
	if p.JitterRate == 0 || !s.inj.inWindow() {
		return 0
	}
	if s.rng.Float64() >= p.JitterRate {
		return 0
	}
	s.inj.counts.Jittered++
	return 1 + s.rng.Intn(p.JitterMax)
}

// Stalled implements channel.FaultHook.
func (s *chanSite) Stalled() bool {
	if s.stalledNow && !s.ch.Quiet() {
		s.inj.counts.StallCycles++
	}
	return s.stalledNow
}

// Deliver implements channel.FaultHook.
func (s *chanSite) Deliver(tok channel.Token) (channel.Token, channel.DeliverAction) {
	p := &s.inj.plan
	if !s.inj.inWindow() {
		return tok, channel.Deliver
	}
	if p.DropRate > 0 && s.rng.Float64() < p.DropRate {
		s.inj.counts.Drops++
		return tok, channel.Drop
	}
	if p.DupRate > 0 && s.rng.Float64() < p.DupRate {
		if s.ch.Len()+s.ch.InFlight() < s.ch.Cap() {
			s.inj.counts.Dups++
		} else {
			s.inj.counts.DupsElided++
		}
		return tok, channel.Dup
	}
	if p.FlipRate > 0 && s.rng.Float64() < p.FlipRate {
		s.inj.counts.Flips++
		tok.Data ^= 1 << uint(s.rng.Intn(32))
	}
	return tok, channel.Deliver
}

// elemSite is one element's freeze schedule.
type elemSite struct {
	rng       *rand.Rand
	src       *countedSource
	hash      int64
	freezes   []window
	widx      int
	frozenNow bool
}

// Injector is a compiled, attached fault plan. It implements
// fabric.FaultInjector; channel hooks are installed by Attach. An
// Injector is single-run state: build a fresh fabric (or Reset it) and a
// fresh Injector per campaign run — or, on a batch lane that reuses the
// instance, Reset the fabric and Rearm the same injector for the next
// seed.
type Injector struct {
	plan   Plan
	cycle  int64
	counts Counts
	chans  []*chanSite
	elems  map[fabric.Element]*elemSite
	// elemList mirrors elems for the per-cycle walk: slice iteration is
	// both cheaper and deterministic (per-site decisions are order-free,
	// but the cache-friendly walk is what BeginCycle's cost budget wants).
	elemList []*elemSite
	active   bool // any freeze window covers the current cycle
	// anyStalls/anyFreezes gate BeginCycle's per-site walks: campaigns
	// with pure data plans (no windows anywhere) pay one branch per cycle
	// instead of a full site scan.
	anyStalls  bool
	anyFreezes bool
}

// New validates and compiles a plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, elems: map[fabric.Element]*elemSite{}}, nil
}

// Attach wraps every matching channel and element of the fabric and
// registers the injector for per-cycle callbacks. Call after the fabric
// is fully wired; channels created later are not covered.
func Attach(f *fabric.Fabric, plan Plan) (*Injector, error) {
	inj, err := New(plan)
	if err != nil {
		return nil, err
	}
	from, to := plan.From, plan.To
	if to <= 0 {
		to = from + DefaultHorizon
	}
	for _, ch := range f.Channels() {
		if !inj.matches(ch.Name()) {
			continue
		}
		site := &chanSite{inj: inj, ch: ch}
		site.rng, site.src, site.hash = siteRand(plan.Seed, "ch:"+ch.Name())
		site.stalls = drawWindows(site.rng, plan.Stalls, plan.StallMax, from, to)
		// Attach-time window draws are replayed by re-attaching the same
		// plan, so checkpoints count only the run-time draws after them.
		site.src.draws = 0
		ch.SetFaultHook(site)
		inj.chans = append(inj.chans, site)
	}
	for _, e := range f.Elements() {
		if !inj.matches(e.Name()) {
			continue
		}
		r, src, hash := siteRand(plan.Seed, "elem:"+e.Name())
		ws := drawWindows(r, plan.Freezes, plan.FreezeMax, from, to)
		if len(ws) == 0 && plan.Freezes == 0 {
			continue // no element-level faults planned; skip the map entry
		}
		es := &elemSite{rng: r, src: src, hash: hash, freezes: ws}
		inj.elems[e] = es
		inj.elemList = append(inj.elemList, es)
	}
	inj.refreshFastPath()
	f.SetFaultInjector(inj)
	return inj, nil
}

// refreshFastPath recomputes the BeginCycle gating bits from the drawn
// window schedules.
func (inj *Injector) refreshFastPath() {
	inj.anyStalls = false
	for _, s := range inj.chans {
		if len(s.stalls) > 0 {
			inj.anyStalls = true
			break
		}
	}
	inj.anyFreezes = false
	for _, es := range inj.elemList {
		if len(es.freezes) > 0 {
			inj.anyFreezes = true
			break
		}
	}
}

// Rearm re-seeds an attached injector in place for the next run of a
// campaign: every site's generator is re-seeded and its window schedule
// redrawn exactly as a fresh Attach of the new plan would, but the site
// wiring, name hashes and window storage are reused, so a batch lane
// arms the next seed without allocating or re-scanning the fabric. The
// caller must Reset the fabric between runs as usual; outcomes are then
// bit-identical to Detach + fresh Attach (the differential test in this
// package asserts it).
//
// The new plan must keep the site population of the attached one: the
// same Sites filter, and element freezes planned (Freezes > 0) in both
// or neither — those decided which sites exist at Attach time. Anything
// else (seed, window bounds, rates, counts) may change per run.
func (inj *Injector) Rearm(plan Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if plan.Sites != inj.plan.Sites {
		return fmt.Errorf("faults: Rearm changes Sites filter %q -> %q; re-Attach instead", inj.plan.Sites, plan.Sites)
	}
	if (plan.Freezes > 0) != (inj.plan.Freezes > 0) {
		return fmt.Errorf("faults: Rearm toggles element freezes (%d -> %d); re-Attach instead", inj.plan.Freezes, plan.Freezes)
	}
	inj.plan = plan
	inj.cycle = 0
	inj.counts = Counts{}
	inj.active = false
	from, to := plan.From, plan.To
	if to <= 0 {
		to = from + DefaultHorizon
	}
	for _, s := range inj.chans {
		s.src.Seed(plan.Seed ^ s.hash)
		s.stalls = drawWindowsInto(s.stalls, s.rng, plan.Stalls, plan.StallMax, from, to)
		s.src.draws = 0
		s.widx = 0
		s.stalledNow = false
	}
	for _, es := range inj.elemList {
		es.src.Seed(plan.Seed ^ es.hash)
		es.freezes = drawWindowsInto(es.freezes, es.rng, plan.Freezes, plan.FreezeMax, from, to)
		es.widx = 0
		es.frozenNow = false
	}
	inj.refreshFastPath()
	return nil
}

// Detach removes the injector's hooks from the fabric, restoring the
// unwrapped fast paths.
func (inj *Injector) Detach(f *fabric.Fabric) {
	for _, s := range inj.chans {
		s.ch.SetFaultHook(nil)
	}
	f.SetFaultInjector(nil)
}

func (inj *Injector) matches(name string) bool {
	return inj.plan.Sites == "" || strings.Contains(name, inj.plan.Sites)
}

// inWindow reports whether the current cycle is inside the plan's active
// window.
func (inj *Injector) inWindow() bool {
	if inj.cycle < inj.plan.From {
		return false
	}
	return inj.plan.To <= 0 || inj.cycle < inj.plan.To
}

// BeginCycle implements fabric.FaultInjector: refresh every site's
// per-cycle stall/freeze state from the precomputed windows. Plans with
// no stall or freeze windows anywhere (every pure data plan) skip the
// site walks entirely — campaign profiles showed the walk dominating
// otherwise, at one covers() call per site per cycle.
func (inj *Injector) BeginCycle(cycle int64) {
	inj.cycle = cycle
	if inj.anyStalls {
		for _, s := range inj.chans {
			s.stalledNow = covers(s.stalls, &s.widx, cycle)
		}
	}
	if inj.anyFreezes {
		inj.active = false
		for _, es := range inj.elemList {
			es.frozenNow = covers(es.freezes, &es.widx, cycle)
			if es.frozenNow {
				inj.active = true
				inj.counts.FreezeCycles++
			}
		}
	}
}

// Frozen implements fabric.FaultInjector. A frozen element implies an
// active freeze window (BeginCycle sets both), so the steppers hoist the
// Active check per cycle and skip the per-element lookup entirely when
// no window covers the cycle.
func (inj *Injector) Frozen(e fabric.Element) bool {
	if !inj.active {
		return false
	}
	es, ok := inj.elems[e]
	return ok && es.frozenNow
}

// Active implements fabric.FaultInjector.
func (inj *Injector) Active() bool { return inj.active }

// Counts returns the injection statistics accumulated so far.
func (inj *Injector) Counts() Counts { return inj.counts }

// countedSource wraps a rand source and counts state advances, so a
// checkpoint can record the generator's position and a restore can
// replay it exactly (math/rand sources expose no serializable state).
// Go's rngSource defines Int63 as a masked Uint64, so every method is
// exactly one state advance and counting calls counts advances.
//
// Seeding is lazy: Seed (and construction via siteRand) records the
// seed but defers the expensive generator-state initialization until
// the first draw. Campaign profiles motivated this — math/rand's seed
// routine fills a 607-word feedback array per site, and in a data-fault
// campaign most sites never draw at all (no windows at attach, and only
// channels that actually deliver tokens before Plan.To consume draws).
// The draw sequence is unchanged: the first draw observes exactly the
// state an eager seed would have produced.
type countedSource struct {
	src     rand.Source64
	draws   int64
	pending int64 // seed to apply before the next draw, when unseeded
	seeded  bool
}

func (c *countedSource) ensure() {
	if !c.seeded {
		c.seeded = true
		if c.src == nil {
			c.src = rand.NewSource(c.pending).(rand.Source64)
		} else {
			c.src.Seed(c.pending)
		}
	}
}

func (c *countedSource) Int63() int64    { c.ensure(); c.draws++; return c.src.Int63() }
func (c *countedSource) Uint64() uint64  { c.ensure(); c.draws++; return c.src.Uint64() }
func (c *countedSource) Seed(seed int64) { c.pending, c.seeded, c.draws = seed, false, 0 }

// burn advances the source n states without counting them (used by
// restore to replay a checkpointed generator position).
func (c *countedSource) burn(n int64) {
	c.ensure()
	for i := int64(0); i < n; i++ {
		c.src.Uint64()
	}
}

// siteRand derives a site-local deterministic generator from the plan
// seed and the site name. The returned source is the generator's own, so
// callers can checkpoint its position; the returned hash is the site
// name's, so Rearm can re-seed for a new plan seed without re-hashing.
// Wrapping does not change the draw sequence: countedSource delegates
// verbatim, and rand.Rand uses a Source64 the same way it uses the bare
// source.
func siteRand(seed int64, site string) (*rand.Rand, *countedSource, int64) {
	h := fnv.New64a()
	h.Write([]byte(site))
	hash := int64(h.Sum64())
	src := &countedSource{pending: seed ^ hash}
	return rand.New(src), src, hash
}
