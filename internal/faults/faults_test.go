package faults

import (
	"errors"
	"math/bits"
	"testing"

	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/isa"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{FlipRate: -0.1},
		{DropRate: 1.5},
		{JitterRate: 0.5}, // JitterMax missing
		{Stalls: 1},       // StallMax missing
		{Freezes: 2},      // FreezeMax missing
		{Stalls: -1},
		{From: 10, To: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	good := []Plan{
		{},
		{Seed: 7},
		{JitterRate: 1, JitterMax: 3, Stalls: 2, StallMax: 5, Freezes: 1, FreezeMax: 4},
		{FlipRate: 0.5, DropRate: 0.5, DupRate: 0.5, From: 5, To: 50},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good plan %d rejected: %v", i, err)
		}
	}
}

func TestDrawWindowsSortedAndBounded(t *testing.T) {
	r, _, _ := siteRand(42, "test")
	ws := drawWindows(r, 20, 7, 10, 100)
	if len(ws) != 20 {
		t.Fatalf("drew %d windows, want 20", len(ws))
	}
	for i, w := range ws {
		if w.start < 10 || w.start >= 100 {
			t.Errorf("window %d start %d outside [10,100)", i, w.start)
		}
		if d := w.end - w.start; d < 1 || d > 7 {
			t.Errorf("window %d duration %d outside [1,7]", i, d)
		}
		if i > 0 && ws[i-1].start > w.start {
			t.Errorf("windows unsorted at %d", i)
		}
	}
	if ws := drawWindows(r, 0, 7, 0, 100); ws != nil {
		t.Errorf("n=0 drew %d windows", len(ws))
	}
	if ws := drawWindows(r, 3, 7, 50, 50); ws != nil {
		t.Errorf("empty span drew %d windows", len(ws))
	}
}

func TestCoversMonotonic(t *testing.T) {
	ws := []window{{2, 4}, {3, 9}, {20, 21}}
	idx := 0
	want := map[int64]bool{0: false, 1: false, 2: true, 3: true, 8: true, 9: false, 19: false, 20: true, 21: false, 30: false}
	for cyc := int64(0); cyc < 32; cyc++ {
		got := covers(ws, &idx, cyc)
		if w, ok := want[cyc]; ok && got != w {
			t.Errorf("covers(%d) = %v, want %v", cyc, got, w)
		}
	}
}

func TestSiteRandDeterministic(t *testing.T) {
	a, _, _ := siteRand(99, "ch:x")
	b, _, _ := siteRand(99, "ch:x")
	c, _, _ := siteRand(99, "ch:y")
	same, diff := true, false
	for i := 0; i < 16; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va != vb {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("same seed+site produced different sequences")
	}
	if !diff {
		t.Error("different sites produced identical sequences")
	}
}

// buildLine returns a src -> sink fabric. With eod the sink waits for the
// EOD marker; otherwise it counts want tokens.
func buildLine(words []isa.Word, eod bool, want int, capacity int) (*fabric.Fabric, *fabric.Sink) {
	f := fabric.New(fabric.DefaultConfig())
	src := fabric.NewWordSource("src", words, eod)
	var snk *fabric.Sink
	if eod {
		snk = fabric.NewSink("snk")
	} else {
		snk = fabric.NewCountingSink("snk", want)
	}
	f.Add(src)
	f.Add(snk)
	f.WireOpt(src, 0, snk, 0, capacity, 1)
	return f, snk
}

func runLine(t *testing.T, plan *Plan, dense bool) ([]channel.Token, int64, Counts, error) {
	t.Helper()
	words := []isa.Word{3, 1, 4, 1, 5, 9, 2, 6}
	f, snk := buildLine(words, true, 0, 4)
	f.SetDenseStepping(dense)
	var inj *Injector
	if plan != nil {
		var err error
		inj, err = Attach(f, *plan)
		if err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	res, err := f.Run(10_000)
	var cnt Counts
	if inj != nil {
		cnt = inj.Counts()
	}
	return snk.Tokens(), res.Cycles, cnt, err
}

func tokensEqual(a, b []channel.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestZeroRatePlanIsNoOp(t *testing.T) {
	for _, dense := range []bool{true, false} {
		base, baseCycles, _, err := runLine(t, nil, dense)
		if err != nil {
			t.Fatalf("dense=%v: baseline: %v", dense, err)
		}
		plan := &Plan{Seed: 1}
		got, cycles, cnt, err := runLine(t, plan, dense)
		if err != nil {
			t.Fatalf("dense=%v: wrapped: %v", dense, err)
		}
		if !tokensEqual(got, base) {
			t.Errorf("dense=%v: zero-rate plan changed output: %v vs %v", dense, got, base)
		}
		if cycles != baseCycles {
			t.Errorf("dense=%v: zero-rate plan changed cycles: %d vs %d", dense, cycles, baseCycles)
		}
		if cnt.Total() != 0 {
			t.Errorf("dense=%v: zero-rate plan injected %+v", dense, cnt)
		}
	}
}

func TestJitterChangesTimingNotResults(t *testing.T) {
	base, baseCycles, _, err := runLine(t, nil, false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	plan := &Plan{Seed: 2, JitterRate: 1, JitterMax: 4}
	got, cycles, cnt, err := runLine(t, plan, false)
	if err != nil {
		t.Fatalf("jittered: %v", err)
	}
	if !tokensEqual(got, base) {
		t.Errorf("jitter changed output: %v vs %v", got, base)
	}
	if cycles <= baseCycles {
		t.Errorf("jitter did not slow the run: %d <= %d", cycles, baseCycles)
	}
	if cnt.Jittered == 0 {
		t.Error("no jitter events counted")
	}
}

func TestStallAndFreezePreserveResults(t *testing.T) {
	base, baseCycles, _, err := runLine(t, nil, false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	plan := &Plan{Seed: 3, Stalls: 3, StallMax: 9, Freezes: 2, FreezeMax: 9, To: baseCycles + 20}
	got, cycles, cnt, err := runLine(t, plan, false)
	if err != nil {
		t.Fatalf("stalled: %v", err)
	}
	if !tokensEqual(got, base) {
		t.Errorf("stall/freeze changed output: %v vs %v", got, base)
	}
	if cnt.FreezeCycles == 0 {
		t.Error("no freeze cycles counted")
	}
	if cycles < baseCycles {
		t.Errorf("perturbed run finished early: %d < %d", cycles, baseCycles)
	}
}

func TestDropCausesHang(t *testing.T) {
	plan := &Plan{Seed: 4, DropRate: 1}
	_, _, cnt, err := runLine(t, plan, false)
	if !errors.Is(err, fabric.ErrDeadlock) {
		t.Fatalf("dropping every token should starve the sink, got %v", err)
	}
	if cnt.Drops == 0 {
		t.Error("no drops counted")
	}
}

func TestDupDeliversExtraCopies(t *testing.T) {
	words := []isa.Word{7, 8, 9}
	f, snk := buildLine(words, false, 6, 16)
	plan := Plan{Seed: 5, DupRate: 1}
	inj, err := Attach(f, plan)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := f.Run(10_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := snk.Words()
	want := []isa.Word{7, 7, 8, 8, 9, 9}
	if len(got) != len(want) {
		t.Fatalf("sink got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink got %v, want %v", got, want)
		}
	}
	cnt := inj.Counts()
	if cnt.Dups != 3 || cnt.DupsElided != 0 {
		t.Errorf("counts = %+v, want 3 dups, 0 elided", cnt)
	}
}

func TestFlipFlipsExactlyOneBit(t *testing.T) {
	words := []isa.Word{0, 0, 0, 0}
	f, snk := buildLine(words, false, 4, 8)
	plan := Plan{Seed: 6, FlipRate: 1}
	inj, err := Attach(f, plan)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := f.Run(10_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, w := range snk.Words() {
		if bits.OnesCount32(uint32(w)) != 1 {
			t.Errorf("word %d = %#x, want exactly one flipped bit", i, w)
		}
	}
	if got := inj.Counts().Flips; got != 4 {
		t.Errorf("Flips = %d, want 4", got)
	}
}

func TestSiteFilterRestrictsInjection(t *testing.T) {
	plan := &Plan{Seed: 7, FlipRate: 1, Sites: "no-such-site"}
	base, _, _, err := runLine(t, nil, false)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	got, _, cnt, err := runLine(t, plan, false)
	if err != nil {
		t.Fatalf("filtered: %v", err)
	}
	if !tokensEqual(got, base) {
		t.Errorf("filtered plan changed output")
	}
	if cnt.Total() != 0 {
		t.Errorf("filtered plan injected %+v", cnt)
	}
}

// The core invariant: under one plan, dense and event-driven stepping
// produce bit-identical outputs, cycle counts, and injection counts.
func TestFaultsIdenticalAcrossSteppers(t *testing.T) {
	plans := []Plan{
		{Seed: 11, JitterRate: 0.5, JitterMax: 3},
		{Seed: 12, Stalls: 4, StallMax: 7, Freezes: 2, FreezeMax: 5, To: 200},
		{Seed: 13, FlipRate: 0.4, DropRate: 0.1, DupRate: 0.3},
		{Seed: 14, JitterRate: 0.3, JitterMax: 2, Stalls: 2, StallMax: 5, FlipRate: 0.2, DupRate: 0.2, To: 300},
	}
	for pi, plan := range plans {
		dTok, dCyc, dCnt, dErr := runLine(t, &plan, true)
		eTok, eCyc, eCnt, eErr := runLine(t, &plan, false)
		if (dErr == nil) != (eErr == nil) {
			t.Fatalf("plan %d: errors diverge: dense=%v event=%v", pi, dErr, eErr)
		}
		if !tokensEqual(dTok, eTok) {
			t.Errorf("plan %d: outputs diverge:\ndense: %v\nevent: %v", pi, dTok, eTok)
		}
		if dCyc != eCyc {
			t.Errorf("plan %d: cycles diverge: dense=%d event=%d", pi, dCyc, eCyc)
		}
		if dCnt != eCnt {
			t.Errorf("plan %d: counts diverge:\ndense: %+v\nevent: %+v", pi, dCnt, eCnt)
		}
	}
}

func TestDetachRestoresFastPath(t *testing.T) {
	words := []isa.Word{1, 2, 3}
	f, snk := buildLine(words, true, 0, 4)
	inj, err := Attach(f, Plan{Seed: 8, FlipRate: 1})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	inj.Detach(f)
	if _, err := f.Run(10_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := snk.Words()
	for i, w := range []isa.Word{1, 2, 3} {
		if got[i] != w {
			t.Fatalf("detached run corrupted output: %v", got)
		}
	}
}
