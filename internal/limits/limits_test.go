package limits

import (
	"sync"
	"testing"

	"tia/internal/asm"
	"tia/internal/isa"
	"tia/internal/pcpe"
)

func census(elements, chanToks, spWords int) asm.Census {
	return asm.Census{Elements: elements, ChannelTokens: chanToks, ScratchpadWords: spWords}
}

func TestZeroLimitsAdmitEverything(t *testing.T) {
	var g Governor
	release, err := g.Admit(census(1_000_000, 1_000_000_000, 1_000_000_000))
	if err != nil {
		t.Fatalf("zero-value governor rejected: %v", err)
	}
	release()
}

func TestNilGovernorAdmits(t *testing.T) {
	var g *Governor
	release, err := g.Admit(census(10, 10, 10))
	if err != nil {
		t.Fatalf("nil governor rejected: %v", err)
	}
	release()
}

func TestPerJobLimits(t *testing.T) {
	cases := []struct {
		name string
		lim  Limits
		c    asm.Census
		ok   bool
	}{
		{"elements over", Limits{MaxElements: 4}, census(5, 0, 0), false},
		{"elements at", Limits{MaxElements: 4}, census(4, 0, 0), true},
		{"channel tokens over", Limits{MaxChannelTokens: 100}, census(1, 101, 0), false},
		{"channel tokens at", Limits{MaxChannelTokens: 100}, census(1, 100, 0), true},
		{"scratchpad over", Limits{MaxScratchpadWords: 1024}, census(1, 0, 1025), false},
		{"scratchpad at", Limits{MaxScratchpadWords: 1024}, census(1, 0, 1024), true},
		{"cost over", Limits{MaxCostWords: 100}, census(2, 0, 0), false}, // 2*64 > 100
		{"cost under", Limits{MaxCostWords: 100}, census(1, 0, 0), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGovernor(tc.lim)
			release, err := g.Admit(tc.c)
			if tc.ok {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				release()
				return
			}
			if err == nil {
				t.Fatal("expected rejection")
			}
			if !IsResourceLimit(err) {
				t.Fatalf("rejection is not a *limits.Error: %T", err)
			}
			if err.(*Error).Scope != "job" {
				t.Fatalf("per-job violation has scope %q, want job", err.(*Error).Scope)
			}
		})
	}
}

func TestServerBudgetReserveAndRelease(t *testing.T) {
	c := census(1, 0, 0) // cost = 64
	g := NewGovernor(Limits{ServerCostWords: 2 * Cost(c)})

	r1, err := g.Admit(c)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	r2, err := g.Admit(c)
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}
	if _, err := g.Admit(c); err == nil {
		t.Fatal("third admit should exceed the server budget")
	} else if err.(*Error).Scope != "server" {
		t.Fatalf("server violation has scope %q, want server", err.(*Error).Scope)
	}
	r1()
	r1() // release is idempotent
	if got := g.InUseCostWords(); got != Cost(c) {
		t.Fatalf("after one release inUse = %d, want %d", got, Cost(c))
	}
	r3, err := g.Admit(c)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r2()
	r3()
	if got := g.InUseCostWords(); got != 0 {
		t.Fatalf("after all releases inUse = %d, want 0", got)
	}
}

func TestServerBudgetConcurrent(t *testing.T) {
	c := census(1, 0, 0)
	const slots = 8
	g := NewGovernor(Limits{ServerCostWords: slots * Cost(c)})
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if release, err := g.Admit(c); err == nil {
				mu.Lock()
				admitted++
				mu.Unlock()
				_ = release // held for the test's duration
			}
		}()
	}
	wg.Wait()
	if admitted != slots {
		t.Fatalf("admitted %d jobs into %d slots", admitted, slots)
	}
}

func TestCostFromRealNetlist(t *testing.T) {
	src := `
source a : 1 2 3 eod
sink o
scratchpad sp 256
pe copy
in a
out o
cp:  when a.tag==0 : mov o, a ; deq a
fin: when a.tag==eod : halt o#eod ; deq a
end
wire a.0 -> copy.a
wire copy.o -> o.0 cap 8
`
	cs, err := asm.CheckNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatalf("CheckNetlist: %v", err)
	}
	if cs.Elements != 4 || cs.Scratchpads != 1 || cs.Channels != 2 {
		t.Fatalf("census = %+v", cs)
	}
	if cs.ScratchpadWords != 256 {
		t.Fatalf("scratchpad words = %d, want 256", cs.ScratchpadWords)
	}
	if Cost(cs) <= 0 {
		t.Fatalf("cost = %d", Cost(cs))
	}
}
