// Package limits cost-models a job's resource footprint before anything
// is constructed and admits or rejects it against per-job and per-server
// budgets. The worker service runs every netlist job's Census (computed
// by the asm validator without allocating) through a Governor; rejection
// surfaces as a typed resource_limit job error (HTTP 422) that the
// coordinator treats as deterministic — the job would be rejected on
// every node, so there is nothing to fail over to.
package limits

import (
	"fmt"
	"sync"

	"tia/internal/asm"
)

// Limits are the per-job and per-server budgets. Zero values mean
// "unlimited" so an unconfigured server behaves exactly as before.
type Limits struct {
	// MaxElements caps fabric elements (sources, sinks, PEs, scratchpads)
	// in a single job.
	MaxElements int
	// MaxChannelTokens caps the sum of channel FIFO capacities in a
	// single job, in tokens. Channel rings are the per-wire allocation.
	MaxChannelTokens int
	// MaxScratchpadWords caps the total scratchpad image of a single job.
	MaxScratchpadWords int
	// MaxCostWords caps a single job's modeled footprint (see Cost).
	MaxCostWords int64
	// ServerCostWords caps the modeled footprint of all jobs currently
	// admitted on this server; jobs over the per-job budgets never count
	// against it.
	ServerCostWords int64
}

// Cost models a job's memory footprint in words. It intentionally
// over-counts fixed per-element overhead (a flat constant per element)
// and counts every channel token slot and scratchpad word once, plus the
// snapshot footprint (one more copy of channel and scratchpad state, the
// worst case the snapshot encoder produces).
func Cost(c asm.Census) int64 {
	const perElementOverhead = 64 // regs/preds/bookkeeping, flat upper bound
	words := int64(c.Elements)*perElementOverhead +
		int64(c.Instructions) +
		int64(c.SourceTokens) +
		2*int64(c.ChannelTokens) + // channel ring + inflight ring
		int64(c.ScratchpadWords)
	// Snapshot/restore keeps a second copy of the mutable state.
	words += 2*int64(c.ChannelTokens) + int64(c.ScratchpadWords)
	return words
}

// Error is the typed rejection a Governor returns; the service maps it
// to the resource_limit job error kind.
type Error struct {
	// Scope is "job" for a per-job budget violation (deterministic:
	// resubmission can never succeed) or "server" for a transient
	// whole-server saturation.
	Scope string
	Msg   string
}

func (e *Error) Error() string { return e.Msg }

// IsResourceLimit reports whether err is a governor rejection.
func IsResourceLimit(err error) bool {
	_, ok := err.(*Error)
	return ok
}

// Governor admits jobs against Limits, tracking the cost of jobs
// currently in flight on this server. The zero value admits everything.
type Governor struct {
	lim Limits

	mu    sync.Mutex
	inUse int64
}

// NewGovernor returns a governor enforcing lim.
func NewGovernor(lim Limits) *Governor { return &Governor{lim: lim} }

// Limits returns the configured budgets.
func (g *Governor) Limits() Limits { return g.lim }

// InUseCostWords returns the modeled footprint of currently admitted jobs.
func (g *Governor) InUseCostWords() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Admit checks the census against the per-job budgets and reserves its
// cost against the server budget. On success it returns a release
// function the caller must invoke when the job leaves the server (in any
// terminal state). On failure it returns a *Error and reserves nothing.
func (g *Governor) Admit(c asm.Census) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if g.lim.MaxElements > 0 && c.Elements > g.lim.MaxElements {
		return nil, &Error{Scope: "job", Msg: fmt.Sprintf(
			"netlist declares %d elements, per-job limit is %d", c.Elements, g.lim.MaxElements)}
	}
	if g.lim.MaxChannelTokens > 0 && c.ChannelTokens > g.lim.MaxChannelTokens {
		return nil, &Error{Scope: "job", Msg: fmt.Sprintf(
			"netlist declares %d tokens of channel capacity, per-job limit is %d", c.ChannelTokens, g.lim.MaxChannelTokens)}
	}
	if g.lim.MaxScratchpadWords > 0 && c.ScratchpadWords > g.lim.MaxScratchpadWords {
		return nil, &Error{Scope: "job", Msg: fmt.Sprintf(
			"netlist declares %d scratchpad words, per-job limit is %d", c.ScratchpadWords, g.lim.MaxScratchpadWords)}
	}
	cost := Cost(c)
	if g.lim.MaxCostWords > 0 && cost > g.lim.MaxCostWords {
		return nil, &Error{Scope: "job", Msg: fmt.Sprintf(
			"job cost %d words exceeds the per-job budget of %d", cost, g.lim.MaxCostWords)}
	}
	if g.lim.ServerCostWords > 0 {
		g.mu.Lock()
		if g.inUse+cost > g.lim.ServerCostWords {
			inUse := g.inUse
			g.mu.Unlock()
			return nil, &Error{Scope: "server", Msg: fmt.Sprintf(
				"job cost %d words would exceed the server budget of %d (%d in use)", cost, g.lim.ServerCostWords, inUse)}
		}
		g.inUse += cost
		g.mu.Unlock()
		var once sync.Once
		return func() {
			once.Do(func() {
				g.mu.Lock()
				g.inUse -= cost
				g.mu.Unlock()
			})
		}, nil
	}
	return func() {}, nil
}
