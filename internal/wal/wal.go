// Package wal is the CRC-framed, fsync'd append-only record log that
// crash-safe state in this repo is built on. It was extracted from the
// service's job journal (PR 4) so the fleet coordinator's durable state
// can reuse the exact same framing and torn-tail recovery instead of
// inventing a second one.
//
// Framing is length + CRC32 + payload per record. The log is only ever
// extended; the single destructive operation is truncating a torn tail
// at open — everything after the last record that framed and
// checksummed correctly is the residue of a crash mid-append and is
// unrecoverable by construction. Appends are serialized and fsync'd
// before returning, so once Append returns nil the record survives a
// crash.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// DefaultMaxRecord bounds one record's payload when Open is given no
// limit; a length prefix beyond the bound is treated as tail
// corruption, not an allocation request.
const DefaultMaxRecord = 64 << 20

// Log is the append side of a write-ahead log.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if absent) a log at path, replays every intact
// record, truncates any torn tail, and positions the file for appends.
// It returns the replayed payloads in append order. maxRecord bounds a
// single record's payload; <= 0 means DefaultMaxRecord.
func Open(path string, maxRecord int) (*Log, [][]byte, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecord
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs, good, err := readAll(f, maxRecord)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal %s: truncate torn tail: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal %s: %w", path, err)
	}
	return &Log{f: f, path: path}, recs, nil
}

// readAll scans records from the start of the file, returning the
// intact payloads and the offset just past the last one. Framing damage
// (short header, short payload, CRC mismatch, absurd length) ends the
// scan without error: it marks the torn tail.
func readAll(f *os.File, maxRecord int) ([][]byte, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs   [][]byte
		good   int64
		header [8]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return recs, good, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > uint32(maxRecord) {
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, good, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil
		}
		recs = append(recs, payload)
		good += int64(len(header)) + int64(n)
	}
}

// Append frames one payload, writes it, and fsyncs before returning.
func (l *Log) Append(payload []byte) error {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close releases the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
