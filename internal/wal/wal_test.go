package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRoundTrip: appended payloads come back verbatim, in order, across
// a close/reopen.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	log, recs, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if err := log.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log, recs, err = Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

// TestTornTail: a crash mid-append leaves a torn tail; reopen must keep
// every intact record, drop the tail, and truncate the file so the next
// append starts clean.
func TestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	log, _, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("alpha"))
	log.Append([]byte("beta"))
	log.Close()

	// Simulate the crash: append half a record by hand.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{50, 0, 0, 0, 1, 2}) // length says 50, then nothing
	f.Close()

	log, recs, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" {
		t.Fatalf("replay after torn tail = %q", recs)
	}
	if err := log.Append([]byte("gamma")); err != nil {
		t.Fatal(err)
	}
	log.Close()
	_, recs, err = Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2]) != "gamma" {
		t.Fatalf("post-truncate append replay = %q", recs)
	}
}

// TestCorruptRecord: a CRC mismatch mid-file ends the scan there — the
// damaged record and everything after it are the torn tail.
func TestCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	log, _, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("keep"))
	log.Append([]byte("damage-me"))
	log.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	log, recs, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(recs) != 1 || string(recs[0]) != "keep" {
		t.Fatalf("replay after corruption = %q, want just %q", recs, "keep")
	}
}

// TestMaxRecord: a length prefix beyond the bound is tail corruption,
// not an allocation request.
func TestMaxRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	log, _, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	log.Append([]byte("ok"))
	log.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Close()
	log, recs, err := Open(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if len(recs) != 1 || string(recs[0]) != "ok" {
		t.Fatalf("replay = %q, want just %q", recs, "ok")
	}
}
