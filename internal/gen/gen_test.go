package gen

// Generative differential testing: every generated netlist must produce
// bit-identical results on all four stepping backends (dense, event,
// sharded, closure-compiled), and interrupting any completing run with
// a mid-run snapshot/restore into a freshly parsed instance must be
// unobservable. FuzzSimulate drives the same harness from the fuzzer
// (make fuzz-smoke / the nightly CI job); TestGeneratedDifferential
// pins a deterministic seed sweep into the ordinary test suite.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"tia/internal/asm"
	"tia/internal/batchrun"
	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/isa"
	"tia/internal/pcpe"
)

// fuzzMaxCycles bounds every differential run; generated graphs are
// small (tens of tokens), so a completing run needs far fewer.
const fuzzMaxCycles = 20000

// backend is one stepping configuration under test.
type backend struct {
	label    string
	dense    bool
	shards   int
	compiled bool
}

var backends = []backend{
	{label: "event"},
	{label: "dense", dense: true},
	{label: "sharded", shards: 2},
	{label: "compiled", compiled: true},
}

// observation is everything a client can see from one run.
type observation struct {
	Cycles    int64
	Completed bool
	Err       string
	Sinks     map[string][]channel.Token
}

func parse(t *testing.T, src string) *asm.Netlist {
	t.Helper()
	nl, err := asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
	if err != nil {
		t.Fatalf("netlist stopped parsing between backends: %v", err)
	}
	return nl
}

func observe(nl *asm.Netlist, cycles int64, completed bool, err error) observation {
	obs := observation{Cycles: cycles, Completed: completed, Sinks: map[string][]channel.Token{}}
	if err != nil {
		obs.Err = err.Error()
	}
	for name, sink := range nl.Sinks {
		obs.Sinks[name] = sink.Tokens()
	}
	return obs
}

func runBackend(t *testing.T, src string, b backend) observation {
	t.Helper()
	nl := parse(t, src)
	nl.Fabric.SetDenseStepping(b.dense)
	nl.Fabric.SetShards(b.shards)
	nl.Fabric.SetCompiled(b.compiled)
	res, err := nl.Fabric.Run(fuzzMaxCycles)
	return observe(nl, res.Cycles, res.Completed, err)
}

// differential runs one netlist source through every backend plus the
// snapshot/restore arm and fails the test on any observable divergence.
// Invalid sources (mutation mode) must be rejected with a typed error —
// any panic escapes to the fuzzer as a crash.
func differential(t *testing.T, src string) {
	t.Helper()
	if _, err := asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig()); err != nil {
		// Rejected inputs are fine; the contract is "typed error, no
		// panic". Make sure rejection is deterministic, too.
		if _, err2 := asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig()); err2 == nil || err.Error() != err2.Error() {
			t.Fatalf("nondeterministic rejection:\n first: %v\nsecond: %v", err, err2)
		}
		return
	}

	ref := runBackend(t, src, backends[0])
	for _, b := range backends[1:] {
		got := runBackend(t, src, b)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("backend divergence (%s vs %s):\n%s: %+v\n%s: %+v\nnetlist:\n%s",
				backends[0].label, b.label, backends[0].label, ref, b.label, got, src)
		}
	}

	// Snapshot arm: checkpoint the event backend mid-run, restore the
	// snapshot into a freshly parsed instance, finish there, compare.
	if !ref.Completed || ref.Cycles < 2 {
		return
	}
	mid := ref.Cycles / 2
	b := parse(t, src)
	if len(b.Sinks) == 0 {
		// A sinkless fabric completes by the quiescence window, whose
		// idle-streak counter restarts after a restore — the absolute
		// completion cycle is exact only for sink-driven completion.
		return
	}
	fp := b.Fingerprint()
	var snap []byte
	b.Fabric.SetCheckpoint(mid, func(cycle int64) error {
		if snap != nil {
			return nil
		}
		s, err := b.Fabric.Snapshot(fp)
		if err != nil {
			return err
		}
		snap = s
		return nil
	})
	resB, errB := b.Fabric.Run(fuzzMaxCycles)
	if got := observe(b, resB.Cycles, resB.Completed, errB); !reflect.DeepEqual(ref, got) {
		t.Fatalf("checkpointing perturbed the run:\nplain: %+v\ncheckpointed: %+v\nnetlist:\n%s", ref, got, src)
	}
	if snap == nil {
		t.Fatalf("no checkpoint fired (run took %d cycles, checkpoint every %d)", resB.Cycles, mid)
	}
	c := parse(t, src)
	if err := c.Fabric.Restore(snap, c.Fingerprint()); err != nil {
		t.Fatalf("restore into a fresh parse: %v", err)
	}
	resC, errC := c.Fabric.Run(fuzzMaxCycles - mid)
	if got := observe(c, resC.Cycles, resC.Completed, errC); !reflect.DeepEqual(ref, got) {
		t.Fatalf("restored run diverged:\nplain: %+v\nrestored: %+v\nnetlist:\n%s", ref, got, src)
	}
}

// batchedArm cross-checks the batched stepper against serial runs over
// heterogeneous generated topologies: K consecutive seeds become K batch
// lanes, each lane a freshly parsed netlist of its own shape, and every
// lane's observation (cycles, completion, error, sink contents) must
// equal a standalone serial run of the same source. Seeds whose source
// fails to parse are skipped — parse rejection is the serial arms' job.
func batchedArm(t *testing.T, seed int64, mutate bool) {
	t.Helper()
	const lanes = 3
	var srcs []string
	var want []observation
	for i := int64(0); i < lanes; i++ {
		src := inputFor(seed+i, mutate)
		if _, err := asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig()); err != nil {
			continue
		}
		srcs = append(srcs, src)
		want = append(want, runBackend(t, src, backends[0]))
	}
	if len(srcs) == 0 {
		return
	}
	nls := make([]*asm.Netlist, len(srcs))
	b, err := batchrun.New(
		batchrun.Config{Lanes: len(srcs), MaxCycles: fuzzMaxCycles},
		func(lane int) (*fabric.Fabric, any, error) {
			nls[lane] = parse(t, srcs[lane])
			return nls[lane].Fabric, nil, nil
		})
	if err != nil {
		t.Fatalf("batchrun.New: %v", err)
	}
	got := make([]observation, len(srcs))
	err = b.Run(context.Background(), len(srcs),
		func(l *batchrun.Lane, run int) error { return nil },
		func(l *batchrun.Lane, run int, res fabric.Result, err error) error {
			got[l.ID] = observe(nls[l.ID], res.Cycles, res.Completed, err)
			return nil
		})
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	for i := range srcs {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("batched lane diverged from serial (seed %d):\nserial:  %+v\nbatched: %+v\nnetlist:\n%s",
				seed+int64(i), want[i], got[i], srcs[i])
		}
	}
}

// inputFor derives the netlist source for one fuzz input.
func inputFor(seed int64, mutate bool) string {
	src := Netlist(Params{Seed: seed})
	if mutate {
		src = Mutate(src, seed+1)
	}
	return src
}

// TestGeneratedDifferential pins a deterministic seed sweep: generated
// netlists complete identically everywhere, and the run must genuinely
// exercise both the completing and the rejected/mutated paths.
func TestGeneratedDifferential(t *testing.T) {
	completed := 0
	for seed := int64(1); seed <= 40; seed++ {
		src := inputFor(seed, false)
		nl, err := asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: generated netlist rejected: %v\n%s", seed, err, src)
		}
		res, err := nl.Fabric.Run(fuzzMaxCycles)
		if err != nil || !res.Completed {
			t.Fatalf("seed %d: generated netlist did not complete (err %v, %+v)\n%s", seed, err, res, src)
		}
		completed++
		differential(t, src)
		differential(t, inputFor(seed, true))
	}
	if completed == 0 {
		t.Fatal("sweep exercised no completing netlists")
	}
}

// TestMutateDeterministic pins that both generator modes are pure
// functions of the seed.
func TestMutateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		if Netlist(Params{Seed: seed}) != Netlist(Params{Seed: seed}) {
			t.Fatalf("Netlist(seed=%d) is not deterministic", seed)
		}
		src := Netlist(Params{Seed: seed})
		if Mutate(src, seed) != Mutate(src, seed) {
			t.Fatalf("Mutate(seed=%d) is not deterministic", seed)
		}
	}
}

// TestGeneratorCoversConstructs checks the seed space actually reaches
// every element family the generator claims to emit.
func TestGeneratorCoversConstructs(t *testing.T) {
	var all strings.Builder
	for seed := int64(0); seed < 200; seed++ {
		all.WriteString(Netlist(Params{Seed: seed}))
	}
	text := all.String()
	for _, construct := range []string{"pe t", "pe d", "pe z", "pe rd", "pcpe q", "scratchpad", "sink", "wire"} {
		if !strings.Contains(text, construct) {
			t.Errorf("200 seeds never generated %q", construct)
		}
	}
}

// FuzzSimulate is the generative differential fuzzer: the fuzzer owns
// the seed, the generator turns it into a netlist (optionally mutated
// into hostile territory), and the harness cross-checks all four
// backends plus snapshot/restore, then the batched stepper against
// serial runs. Run via make fuzz-smoke or the nightly CI job.
func FuzzSimulate(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, mutate bool) {
		differential(t, inputFor(seed, mutate))
		batchedArm(t, seed, mutate)
	})
}
