// Package gen generates random TIA netlists for differential testing
// and fuzzing. Netlist produces valid-by-construction feed-forward
// dataflow graphs — every generated netlist assembles, validates, and
// runs to completion on all stepping backends — while Mutate applies
// seeded source-level corruption to exercise the validator's rejection
// paths. Both are fully deterministic functions of their seed, so a
// failing input reproduces from two integers.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Params bounds the generated topology. The zero value picks sane
// fuzzing defaults (small graphs that run in well under 20k cycles).
type Params struct {
	Seed       int64
	MaxStreams int // initial token streams (default 3)
	MaxStages  int // transform stages applied after stream creation (default 4)
	MaxLen     int // tokens per stream before the EOD (default 6)
}

func (p Params) withDefaults() Params {
	if p.MaxStreams <= 0 {
		p.MaxStreams = 3
	}
	if p.MaxStages < 0 {
		p.MaxStages = 0
	}
	if p.MaxStages == 0 {
		p.MaxStages = 4
	}
	if p.MaxLen <= 0 {
		p.MaxLen = 6
	}
	return p
}

// stream is a live producer endpoint during generation: an element
// output that will deliver length data tokens followed by one EOD.
type stream struct {
	port   string // "elem.port", wireable as a source endpoint
	length int
}

// generator accumulates netlist text while tracking live streams.
type generator struct {
	r       *rand.Rand
	p       Params
	lines   []string
	streams []stream
	nameSeq int
}

func (g *generator) name(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *generator) addf(format string, args ...any) {
	g.lines = append(g.lines, fmt.Sprintf(format, args...))
}

// wireOpts sometimes appends explicit capacity/latency to a wire.
func (g *generator) wireOpts() string {
	var opts string
	if g.r.Intn(3) == 0 {
		opts += fmt.Sprintf(" cap %d", 1+g.r.Intn(8))
	}
	if g.r.Intn(4) == 0 {
		opts += fmt.Sprintf(" lat %d", g.r.Intn(3))
	}
	return opts
}

// Netlist generates one valid netlist: a feed-forward DAG of sources,
// scratchpad readers, triggered and PC-style transforms, duplicators and
// zips, ending in one sink per surviving stream. EOD propagates along
// every edge, so the run always completes.
func Netlist(p Params) string {
	p = p.withDefaults()
	g := &generator{r: rand.New(rand.NewSource(p.Seed)), p: p}

	nStreams := 1 + g.r.Intn(p.MaxStreams)
	for i := 0; i < nStreams; i++ {
		if g.r.Intn(4) == 0 {
			g.scratchpadStream()
		} else {
			g.sourceStream()
		}
	}
	nStages := g.r.Intn(p.MaxStages + 1)
	for i := 0; i < nStages; i++ {
		switch g.r.Intn(5) {
		case 0:
			g.duplicate()
		case 1:
			g.zip()
		case 2:
			g.pcTransform()
		default:
			g.tiaTransform()
		}
	}
	for _, s := range g.streams {
		sink := g.name("k")
		g.addf("sink %s", sink)
		g.addf("wire %s -> %s.0%s", s.port, sink, g.wireOpts())
	}
	return strings.Join(g.lines, "\n") + "\n"
}

// sourceStream emits a plain source: L random words then EOD.
func (g *generator) sourceStream() {
	name := g.name("s")
	length := 1 + g.r.Intn(g.p.MaxLen)
	toks := make([]string, length)
	for i := range toks {
		toks[i] = fmt.Sprintf("%d", g.r.Intn(256))
	}
	g.addf("source %s : %s eod", name, strings.Join(toks, " "))
	g.streams = append(g.streams, stream{port: name + ".0", length: length})
}

// scratchpadStream reads L words out of a preloaded scratchpad: an
// address source drives a one-outstanding-read PE (the busy predicate
// sequences reads so the EOD cannot overtake in-flight data), which
// forwards rdata tokens and finally the EOD.
func (g *generator) scratchpadStream() {
	length := 1 + g.r.Intn(g.p.MaxLen)
	size := length + g.r.Intn(4)
	addrs := make([]string, length)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("%d", i)
	}
	img := make([]string, size)
	for i := range img {
		img[i] = fmt.Sprintf("%d", g.r.Intn(256))
	}
	src, sp, rd := g.name("a"), g.name("m"), g.name("rd")
	g.addf("source %s : %s eod", src, strings.Join(addrs, " "))
	lat := ""
	if g.r.Intn(2) == 0 {
		lat = fmt.Sprintf(" lat %d", 1+g.r.Intn(2))
	}
	g.addf("scratchpad %s %d%s : %s", sp, size, lat, strings.Join(img, " "))
	g.addf("pe %s", rd)
	g.addf("in a m")
	g.addf("out rq o")
	g.addf("pred busy")
	g.addf("g: when !busy a.tag==0 : mov rq, a ; deq a ; set busy")
	g.addf("r: when busy m : mov o, m ; deq m ; clr busy")
	g.addf("f: when !busy a.tag==eod : halt o#eod ; deq a")
	g.addf("end")
	g.addf("wire %s.0 -> %s.a%s", src, rd, g.wireOpts())
	g.addf("wire %s.rq -> %s.raddr", rd, sp)
	g.addf("wire %s.rdata -> %s.m", sp, rd)
	g.streams = append(g.streams, stream{port: rd + ".o", length: length})
}

// unaryOps are (mnemonic, needsImmediate) choices for transforms.
var unaryOps = []struct {
	op  string
	imm bool
}{
	{"mov", false}, {"not", false},
	{"add", true}, {"sub", true}, {"xor", true},
	{"and", true}, {"or", true}, {"shl", true},
}

func (g *generator) pickUnary() (string, string) {
	u := unaryOps[g.r.Intn(len(unaryOps))]
	if !u.imm {
		return u.op, ""
	}
	imm := g.r.Intn(64)
	if u.op == "shl" {
		imm = g.r.Intn(4)
	}
	return u.op, fmt.Sprintf(", #%d", imm)
}

// pickStream removes and returns a random live stream.
func (g *generator) pickStream() stream {
	i := g.r.Intn(len(g.streams))
	s := g.streams[i]
	g.streams = append(g.streams[:i], g.streams[i+1:]...)
	return s
}

// tiaTransform rewrites one stream through a triggered unary PE.
func (g *generator) tiaTransform() {
	in := g.pickStream()
	name := g.name("t")
	op, imm := g.pickUnary()
	g.addf("pe %s", name)
	g.addf("in a")
	g.addf("out o")
	g.addf("cp: when a.tag==0 : %s o, a%s ; deq a", op, imm)
	g.addf("fin: when a.tag==eod : halt o#eod ; deq a")
	g.addf("end")
	g.addf("wire %s -> %s.a%s", in.port, name, g.wireOpts())
	g.streams = append(g.streams, stream{port: name + ".o", length: in.length})
}

// pcTransform rewrites one stream through a sequential PC-style PE.
func (g *generator) pcTransform() {
	in := g.pickStream()
	name := g.name("q")
	op, imm := g.pickUnary()
	if imm == "" {
		op, imm = "add", ", #0"
		if g.r.Intn(2) == 0 {
			op, imm = "xor", fmt.Sprintf(", #%d", g.r.Intn(64))
		}
	}
	g.addf("pcpe %s", name)
	g.addf("in a")
	g.addf("out o")
	g.addf("loop: bne a.tag, #0, fin")
	g.addf("      %s o, a.pop%s", op, imm)
	g.addf("      jmp loop")
	g.addf("fin:  halt o#eod")
	g.addf("end")
	g.addf("wire %s -> %s.a%s", in.port, name, g.wireOpts())
	g.streams = append(g.streams, stream{port: name + ".o", length: in.length})
}

// duplicate fans one stream out into two equal-length copies (the
// enabler for a later zip). The sent predicate orders the two emits per
// token; EOD is forwarded on both branches.
func (g *generator) duplicate() {
	in := g.pickStream()
	name := g.name("d")
	g.addf("pe %s", name)
	g.addf("in a")
	g.addf("out o q")
	g.addf("pred sent")
	g.addf("d1: when !sent a.tag==0 : mov o, a ; set sent")
	g.addf("d2: when sent a.tag==0 : mov q, a ; deq a ; clr sent")
	g.addf("e1: when !sent a.tag==eod : mov o#eod, a ; set sent")
	g.addf("e2: when sent a.tag==eod : halt q#eod ; deq a")
	g.addf("end")
	g.addf("wire %s -> %s.a%s", in.port, name, g.wireOpts())
	g.streams = append(g.streams,
		stream{port: name + ".o", length: in.length},
		stream{port: name + ".q", length: in.length})
}

// binaryOps are the zip combiners.
var binaryOps = []string{"add", "sub", "xor", "and", "or", "ltu"}

// zip merges two equal-length streams pairwise through a binary PE.
// Falls back to a unary transform when no equal-length pair is live.
func (g *generator) zip() {
	// Find an equal-length pair (deterministic scan order).
	ai, bi := -1, -1
	for i := 0; i < len(g.streams) && ai < 0; i++ {
		for j := i + 1; j < len(g.streams); j++ {
			if g.streams[i].length == g.streams[j].length {
				ai, bi = i, j
				break
			}
		}
	}
	if ai < 0 {
		g.tiaTransform()
		return
	}
	a, b := g.streams[ai], g.streams[bi]
	// Remove bi first (bi > ai) so indices stay valid.
	g.streams = append(g.streams[:bi], g.streams[bi+1:]...)
	g.streams = append(g.streams[:ai], g.streams[ai+1:]...)
	name := g.name("z")
	op := binaryOps[g.r.Intn(len(binaryOps))]
	g.addf("pe %s", name)
	g.addf("in a b")
	g.addf("out o")
	g.addf("z: when a.tag==0 b.tag==0 : %s o, a, b ; deq a ; deq b", op)
	g.addf("f: when a.tag==eod b.tag==eod : halt o#eod ; deq a ; deq b")
	g.addf("end")
	g.addf("wire %s -> %s.a%s", a.port, name, g.wireOpts())
	g.addf("wire %s -> %s.b%s", b.port, name, g.wireOpts())
	g.streams = append(g.streams, stream{port: name + ".o", length: a.length})
}

// Mutate applies one to three seeded source-level corruptions to a
// netlist: deleting, duplicating or truncating lines, mangling numbers
// and identifiers, or injecting junk directives. The result usually
// fails validation — which is the point: it drives the validator's
// typed-rejection paths with inputs one edit away from valid.
func Mutate(src string, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	for n := 1 + r.Intn(3); n > 0 && len(lines) > 0; n-- {
		i := r.Intn(len(lines))
		switch r.Intn(6) {
		case 0: // delete a line (dangling wires, missing end, ...)
			lines = append(lines[:i], lines[i+1:]...)
		case 1: // duplicate a line (double connections, dup names)
			lines = append(lines[:i+1], append([]string{lines[i]}, lines[i+1:]...)...)
		case 2: // mangle one number
			lines[i] = mutateNumber(lines[i], r)
		case 3: // mangle one identifier character
			lines[i] = mutateIdent(lines[i], r)
		case 4: // truncate the file
			lines = lines[:i]
		case 5: // inject a junk directive
			junk := []string{"wire ghost.0 -> gone.0", "sink", "pe", "scratchpad big 9999999", "config cap 0", "place nobody -1 -1"}
			lines = append(lines[:i], append([]string{junk[r.Intn(len(junk))]}, lines[i:]...)...)
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// mutateNumber replaces the first number field with a hostile value.
func mutateNumber(line string, r *rand.Rand) string {
	fields := strings.Fields(line)
	hostile := []string{"-1", "0", "99999999", "1048576", "x", "18446744073709551616"}
	for i, f := range fields {
		if f[0] >= '0' && f[0] <= '9' {
			fields[i] = hostile[r.Intn(len(hostile))]
			return strings.Join(fields, " ")
		}
	}
	return line
}

// mutateIdent flips one letter somewhere in the line.
func mutateIdent(line string, r *rand.Rand) string {
	b := []byte(line)
	if len(b) == 0 {
		return line
	}
	for tries := 0; tries < 8; tries++ {
		i := r.Intn(len(b))
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] = byte('a' + r.Intn(26))
			return string(b)
		}
	}
	return line
}
