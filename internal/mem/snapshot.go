package mem

import (
	"fmt"

	"tia/internal/channel"
	"tia/internal/isa"
	"tia/internal/snapshot"
)

// SnapshotState serializes the scratchpad's architectural state: the
// memory image, the read pipeline (tokens plus remaining stages), and
// the access counters. Only runs that ended without a memory fault are
// checkpointed (the fabric aborts on Err), so err is not encoded. The
// image is stored as a delta against the initial image: for lookup-table
// workloads, which never write, that keeps snapshots proportional to the
// dirty set rather than the memory size.
func (m *Scratchpad) SnapshotState(e *snapshot.Encoder) {
	dirty := 0
	for i := range m.data {
		if m.data[i] != m.init[i] {
			dirty++
		}
	}
	e.Int(dirty)
	for i := range m.data {
		if m.data[i] != m.init[i] {
			e.Int(i)
			e.U64(uint64(m.data[i]))
		}
	}
	e.Int(len(m.rdPipe))
	for _, pr := range m.rdPipe {
		e.U64(uint64(pr.tok.Data))
		e.U64(uint64(pr.tok.Tag))
		e.Int(pr.remaining)
	}
	e.I64(m.reads)
	e.I64(m.writes)
}

// RestoreState rebuilds the scratchpad from a snapshot of an identically
// configured scratchpad (same size, same initial image, same read
// latency — guaranteed by the fingerprint check in fabric.Restore).
func (m *Scratchpad) RestoreState(d *snapshot.Decoder) error {
	copy(m.data, m.init)
	dirty := d.Count()
	for k := 0; k < dirty && d.Err() == nil; k++ {
		a := d.Int()
		v := d.U64()
		if d.Err() != nil {
			break
		}
		if a < 0 || a >= len(m.data) {
			return fmt.Errorf("scratchpad %s: snapshot address %d out of range [0,%d)", m.name, a, len(m.data))
		}
		m.data[a] = isa.Word(v)
	}
	nPipe := d.Count()
	if d.Err() == nil && nPipe > m.readLatency+1 {
		return fmt.Errorf("scratchpad %s: snapshot read pipeline depth %d exceeds latency %d", m.name, nPipe, m.readLatency)
	}
	m.rdPipe = m.rdPipe[:0]
	for k := 0; k < nPipe && d.Err() == nil; k++ {
		data := d.U64()
		tag := d.U64()
		rem := d.Int()
		if d.Err() == nil && rem < 0 {
			return fmt.Errorf("scratchpad %s: negative snapshot pipeline remaining %d", m.name, rem)
		}
		m.rdPipe = append(m.rdPipe, pendingRead{
			tok:       channel.Token{Data: isa.Word(data), Tag: isa.Tag(tag)},
			remaining: rem,
		})
	}
	m.reads = d.I64()
	m.writes = d.I64()
	m.err = nil
	if err := d.Err(); err != nil {
		return fmt.Errorf("scratchpad %s: %w", m.name, err)
	}
	return nil
}
