// Package mem implements the scratchpad memory elements embedded in a
// spatial fabric. Workloads keep lookup tables (S-boxes, twiddle factors,
// CSR arrays, failure functions) and bulk data in scratchpads and access
// them through latency-insensitive request/response channels, exactly as
// PEs access the memory elements of the paper's fabric.
package mem

import (
	"fmt"

	"tia/internal/channel"
	"tia/internal/isa"
)

// Port indices of a Scratchpad.
const (
	// PortReadAddr is input 0: each token's data is an address to read;
	// the response on PortReadData carries the same tag as the request,
	// so requesters can label and demultiplex responses.
	PortReadAddr = 0
	// PortWriteAddr is input 1: the address of a write. Writes commit
	// when both an address and a data token are available.
	PortWriteAddr = 1
	// PortWriteData is input 2: the data of a write.
	PortWriteData = 2
	// PortReadData is output 0: read responses, in request order.
	PortReadData = 0
	// PortWriteAck is output 1 (optional): one token {1, TagData} per
	// committed write, in commit order. Requesters use it to sequence
	// reads after writes (read-after-write hazards) and to build stage
	// barriers; when unconnected, writes are unacknowledged.
	PortWriteAck = 1
)

// Scratchpad is a word-addressed memory element servicing at most one read
// and one write per cycle.
type Scratchpad struct {
	name string
	data []isa.Word

	rdAddr *channel.Channel
	wrAddr *channel.Channel
	wrData *channel.Channel
	rdResp *channel.Channel
	wrAck  *channel.Channel

	// readLatency adds pipeline stages to read accesses (0 = respond the
	// cycle the request is serviced, the default). One request still
	// enters the array per cycle: a banked SRAM pipeline, not a slower
	// serial one.
	readLatency int
	rdPipe      []pendingRead

	reads, writes int64
	err           error

	init []isa.Word
}

// New returns a scratchpad holding `words` zeroed words, panicking on a
// non-positive size (use NewChecked on untrusted paths).
func New(name string, words int) *Scratchpad {
	m, err := NewChecked(name, words)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewChecked is New with an invalid size reported as an error.
func NewChecked(name string, words int) (*Scratchpad, error) {
	if words <= 0 {
		return nil, fmt.Errorf("scratchpad %s: size %d", name, words)
	}
	return &Scratchpad{name: name, data: make([]isa.Word, words), init: make([]isa.Word, words)}, nil
}

// Load copies contents into the scratchpad starting at address 0 and
// records it as the initial image restored by Reset. It panics on an
// oversize image (use TryLoad on untrusted paths).
func (m *Scratchpad) Load(contents []isa.Word) {
	if err := m.TryLoad(contents); err != nil {
		panic(err.Error())
	}
}

// TryLoad is Load with an oversize image reported as an error.
func (m *Scratchpad) TryLoad(contents []isa.Word) error {
	if len(contents) > len(m.data) {
		return fmt.Errorf("scratchpad %s: load of %d words into %d-word memory", m.name, len(contents), len(m.data))
	}
	copy(m.data, contents)
	copy(m.init, contents)
	return nil
}

type pendingRead struct {
	tok       channel.Token
	remaining int
}

// SetReadLatency adds n pipeline stages to every read access. Requests
// are still accepted at one per cycle; responses come out n cycles later
// (and in order). Latency-insensitive requesters need no changes.
func (m *Scratchpad) SetReadLatency(n int) {
	if n < 0 {
		n = 0
	}
	m.readLatency = n
}

// ReadLatency returns the configured extra read pipeline depth.
func (m *Scratchpad) ReadLatency() int { return m.readLatency }

// Name implements fabric.Element.
func (m *Scratchpad) Name() string { return m.name }

// Size returns the scratchpad capacity in words.
func (m *Scratchpad) Size() int { return len(m.data) }

// Word returns the current contents of address a (for tests and debug).
func (m *Scratchpad) Word(a int) isa.Word { return m.data[a] }

// ConnectIn implements fabric.InPort, panicking on a bad index or
// double-connection (use TryConnectIn on untrusted paths).
func (m *Scratchpad) ConnectIn(idx int, ch *channel.Channel) {
	if err := m.TryConnectIn(idx, ch); err != nil {
		panic(err.Error())
	}
}

// TryConnectIn implements fabric.CheckedInPort.
func (m *Scratchpad) TryConnectIn(idx int, ch *channel.Channel) error {
	switch idx {
	case PortReadAddr:
		return m.connect(&m.rdAddr, ch)
	case PortWriteAddr:
		return m.connect(&m.wrAddr, ch)
	case PortWriteData:
		return m.connect(&m.wrData, ch)
	default:
		return fmt.Errorf("scratchpad %s: input index %d out of range", m.name, idx)
	}
}

// ConnectOut implements fabric.OutPort, panicking on a bad index or
// double-connection (use TryConnectOut on untrusted paths).
func (m *Scratchpad) ConnectOut(idx int, ch *channel.Channel) {
	if err := m.TryConnectOut(idx, ch); err != nil {
		panic(err.Error())
	}
}

// TryConnectOut implements fabric.CheckedOutPort.
func (m *Scratchpad) TryConnectOut(idx int, ch *channel.Channel) error {
	switch idx {
	case PortReadData:
		return m.connect(&m.rdResp, ch)
	case PortWriteAck:
		return m.connect(&m.wrAck, ch)
	default:
		return fmt.Errorf("scratchpad %s: output index %d out of range", m.name, idx)
	}
}

func (m *Scratchpad) connect(slot **channel.Channel, ch *channel.Channel) error {
	if *slot != nil {
		return fmt.Errorf("scratchpad %s: port connected twice", m.name)
	}
	*slot = ch
	return nil
}

// CheckConnections requires a response channel whenever reads are wired.
func (m *Scratchpad) CheckConnections() error {
	if m.rdAddr != nil && m.rdResp == nil {
		return fmt.Errorf("scratchpad %s: read port wired without response channel", m.name)
	}
	if (m.wrAddr == nil) != (m.wrData == nil) {
		return fmt.Errorf("scratchpad %s: write port needs both address and data channels", m.name)
	}
	return nil
}

// Step implements fabric.Element: service at most one read and one write.
func (m *Scratchpad) Step(int64) bool {
	if m.err != nil {
		return false
	}
	worked := false
	// Drain the read pipeline's head into the response channel.
	if len(m.rdPipe) > 0 && m.rdPipe[0].remaining == 0 && m.rdResp.CanAccept() {
		m.rdResp.Send(m.rdPipe[0].tok)
		// Shift rather than re-slice: the pipeline is at most
		// readLatency+1 entries, and keeping the base stable lets the
		// backing array be reused forever (no per-op allocation).
		copy(m.rdPipe, m.rdPipe[1:])
		m.rdPipe = m.rdPipe[:len(m.rdPipe)-1]
		worked = true
	}
	for i := range m.rdPipe {
		if m.rdPipe[i].remaining > 0 {
			m.rdPipe[i].remaining--
			worked = true // tokens advancing through the pipeline
		}
	}
	if m.rdAddr != nil {
		req, ok := m.rdAddr.Peek()
		// With zero latency, respond directly (subject to response
		// space); with pipelining, accept one request per cycle while
		// the pipeline has room.
		switch {
		case ok && m.readLatency == 0 && len(m.rdPipe) == 0 && m.rdResp.CanAccept():
			a := int(req.Data)
			if a < 0 || a >= len(m.data) {
				m.err = fmt.Errorf("read of address %d in %d-word scratchpad", a, len(m.data))
				return true
			}
			m.rdAddr.Deq()
			m.rdResp.Send(channel.Token{Data: m.data[a], Tag: req.Tag})
			m.reads++
			worked = true
		case ok && m.readLatency > 0 && len(m.rdPipe) <= m.readLatency:
			a := int(req.Data)
			if a < 0 || a >= len(m.data) {
				m.err = fmt.Errorf("read of address %d in %d-word scratchpad", a, len(m.data))
				return true
			}
			m.rdAddr.Deq()
			m.rdPipe = append(m.rdPipe, pendingRead{
				tok:       channel.Token{Data: m.data[a], Tag: req.Tag},
				remaining: m.readLatency - 1,
			})
			m.reads++
			worked = true
		}
	}
	if m.wrAddr != nil {
		addr, okA := m.wrAddr.Peek()
		val, okD := m.wrData.Peek()
		if okA && okD && (m.wrAck == nil || m.wrAck.CanAccept()) {
			a := int(addr.Data)
			if a < 0 || a >= len(m.data) {
				m.err = fmt.Errorf("write of address %d in %d-word scratchpad", a, len(m.data))
				return true
			}
			m.wrAddr.Deq()
			m.wrData.Deq()
			m.data[a] = val.Data
			if m.wrAck != nil {
				m.wrAck.Send(channel.Data(1))
			}
			m.writes++
			worked = true
		}
	}
	return worked
}

// Done implements fabric.Element; a scratchpad is passive and never done.
func (m *Scratchpad) Done() bool { return false }

// Err surfaces out-of-range accesses to the fabric run loop.
func (m *Scratchpad) Err() error { return m.err }

// Reads and Writes return the cumulative serviced request counts.
func (m *Scratchpad) Reads() int64  { return m.reads }
func (m *Scratchpad) Writes() int64 { return m.writes }

// Reset restores the initial memory image and clears counters. The read
// pipeline's capacity is kept for the next run.
func (m *Scratchpad) Reset() {
	copy(m.data, m.init)
	m.reads, m.writes = 0, 0
	m.rdPipe = m.rdPipe[:0]
	m.err = nil
}
