package mem

import (
	"errors"
	"testing"

	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/isa"
)

// tick steps the scratchpad and commits its channels.
func tick(m *Scratchpad, chans ...*channel.Channel) {
	m.Step(0)
	for _, c := range chans {
		c.Tick()
	}
}

func wiredScratchpad(words int) (*Scratchpad, *channel.Channel, *channel.Channel, *channel.Channel, *channel.Channel) {
	m := New("sp", words)
	ra := channel.New("ra", 4, 0)
	wa := channel.New("wa", 4, 0)
	wd := channel.New("wd", 4, 0)
	rd := channel.New("rd", 4, 0)
	m.ConnectIn(PortReadAddr, ra)
	m.ConnectIn(PortWriteAddr, wa)
	m.ConnectIn(PortWriteData, wd)
	m.ConnectOut(PortReadData, rd)
	return m, ra, wa, wd, rd
}

func TestReadPreservesTag(t *testing.T) {
	m, ra, wa, wd, rd := wiredScratchpad(8)
	m.Load([]isa.Word{100, 200, 300})
	ra.Send(channel.Token{Data: 2, Tag: 5})
	tick(m, ra, wa, wd, rd) // request becomes visible
	tick(m, ra, wa, wd, rd) // serviced
	tok, ok := rd.Peek()
	if !ok || tok.Data != 300 || tok.Tag != 5 {
		t.Fatalf("read response = %v,%v want 300#5", tok, ok)
	}
	if m.Reads() != 1 {
		t.Errorf("Reads = %d, want 1", m.Reads())
	}
}

func TestWriteWaitsForBothTokens(t *testing.T) {
	m, ra, wa, wd, rd := wiredScratchpad(8)
	wa.Send(channel.Data(3))
	tick(m, ra, wa, wd, rd)
	tick(m, ra, wa, wd, rd)
	if m.Writes() != 0 {
		t.Fatal("write committed without data token")
	}
	wd.Send(channel.Data(77))
	tick(m, ra, wa, wd, rd)
	tick(m, ra, wa, wd, rd)
	if m.Writes() != 1 || m.Word(3) != 77 {
		t.Fatalf("write not committed: writes=%d mem[3]=%d", m.Writes(), m.Word(3))
	}
}

func TestReadAndWriteSameCycle(t *testing.T) {
	m, ra, wa, wd, rd := wiredScratchpad(8)
	m.Load([]isa.Word{9})
	ra.Send(channel.Data(0))
	wa.Send(channel.Data(1))
	wd.Send(channel.Data(42))
	tick(m, ra, wa, wd, rd)
	tick(m, ra, wa, wd, rd)
	if m.Reads() != 1 || m.Writes() != 1 {
		t.Fatalf("reads=%d writes=%d, want 1/1", m.Reads(), m.Writes())
	}
}

func TestOutOfRangeAccessFaults(t *testing.T) {
	m, ra, wa, wd, rd := wiredScratchpad(4)
	ra.Send(channel.Data(99))
	tick(m, ra, wa, wd, rd)
	tick(m, ra, wa, wd, rd)
	if m.Err() == nil {
		t.Fatal("out-of-range read not reported")
	}
	m2, ra2, wa2, wd2, rd2 := wiredScratchpad(4)
	wa2.Send(channel.Data(100))
	wd2.Send(channel.Data(1))
	tick(m2, ra2, wa2, wd2, rd2)
	tick(m2, ra2, wa2, wd2, rd2)
	if m2.Err() == nil {
		t.Fatal("out-of-range write not reported")
	}
}

func TestBackpressureStallsReads(t *testing.T) {
	m := New("sp", 4)
	ra := channel.New("ra", 4, 0)
	rd := channel.New("rd", 1, 0)
	m.ConnectIn(PortReadAddr, ra)
	m.ConnectOut(PortReadData, rd)
	ra.Send(channel.Data(0))
	ra.Send(channel.Data(1))
	ra.Tick()
	rd.Tick()
	// First read fills the depth-1 response channel; second must wait.
	for i := 0; i < 5; i++ {
		m.Step(0)
		ra.Tick()
		rd.Tick()
	}
	if m.Reads() != 1 {
		t.Fatalf("Reads = %d despite full response channel, want 1", m.Reads())
	}
}

func TestCheckConnections(t *testing.T) {
	m := New("sp", 4)
	m.ConnectIn(PortReadAddr, channel.New("ra", 2, 0))
	if err := m.CheckConnections(); err == nil {
		t.Fatal("read port without response accepted")
	}
	m2 := New("sp2", 4)
	m2.ConnectIn(PortWriteAddr, channel.New("wa", 2, 0))
	if err := m2.CheckConnections(); err == nil {
		t.Fatal("write addr without data accepted")
	}
}

func TestResetRestoresImage(t *testing.T) {
	m, ra, wa, wd, rd := wiredScratchpad(4)
	m.Load([]isa.Word{1, 2, 3, 4})
	wa.Send(channel.Data(0))
	wd.Send(channel.Data(99))
	tick(m, ra, wa, wd, rd)
	tick(m, ra, wa, wd, rd)
	if m.Word(0) != 99 {
		t.Fatal("write missing")
	}
	m.Reset()
	if m.Word(0) != 1 || m.Reads() != 0 || m.Writes() != 0 {
		t.Fatal("Reset did not restore image/counters")
	}
}

// Integration: a scratchpad inside a fabric answering a stream of reads.
func TestScratchpadInFabric(t *testing.T) {
	f := fabric.New(fabric.DefaultConfig())
	m := New("table", 8)
	m.Load([]isa.Word{10, 11, 12, 13, 14, 15, 16, 17})
	src := fabric.NewWordSource("addrs", []isa.Word{7, 0, 3}, false)
	snk := fabric.NewCountingSink("snk", 3)
	f.Add(src)
	f.Add(m)
	f.Add(snk)
	f.Wire(src, 0, m, PortReadAddr)
	f.Wire(m, PortReadData, snk, 0)
	res, err := f.Run(100)
	if err != nil || !res.Completed {
		t.Fatalf("Run = %+v, %v", res, err)
	}
	got := snk.Words()
	want := []isa.Word{17, 10, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("responses %v, want %v", got, want)
		}
	}
}

func TestFabricSurfacesScratchpadFault(t *testing.T) {
	f := fabric.New(fabric.DefaultConfig())
	m := New("table", 2)
	src := fabric.NewWordSource("addrs", []isa.Word{9}, false)
	snk := fabric.NewCountingSink("snk", 1)
	f.Add(src)
	f.Add(m)
	f.Add(snk)
	f.Wire(src, 0, m, PortReadAddr)
	f.Wire(m, PortReadData, snk, 0)
	_, err := f.Run(100)
	if err == nil || errors.Is(err, fabric.ErrTimeout) {
		t.Fatalf("want scratchpad fault error, got %v", err)
	}
}

func TestWriteAck(t *testing.T) {
	m := New("sp", 4)
	wa := channel.New("wa", 4, 0)
	wd := channel.New("wd", 4, 0)
	ack := channel.New("ack", 1, 0)
	m.ConnectIn(PortWriteAddr, wa)
	m.ConnectIn(PortWriteData, wd)
	m.ConnectOut(PortWriteAck, ack)
	wa.Send(channel.Data(0))
	wd.Send(channel.Data(7))
	wa.Send(channel.Data(1))
	wd.Send(channel.Data(8))
	for i := 0; i < 4; i++ {
		m.Step(0)
		wa.Tick()
		wd.Tick()
		ack.Tick()
	}
	// Depth-1 ack channel not drained: only the first write commits.
	if m.Writes() != 1 {
		t.Fatalf("writes = %d despite full ack channel, want 1", m.Writes())
	}
	tok, ok := ack.Peek()
	if !ok || tok.Data != 1 {
		t.Fatalf("ack = %v,%v want 1", tok, ok)
	}
	ack.Deq()
	for i := 0; i < 4; i++ {
		m.Step(0)
		wa.Tick()
		wd.Tick()
		ack.Tick()
	}
	if m.Writes() != 2 {
		t.Fatalf("writes = %d after draining ack, want 2", m.Writes())
	}
	if m.Word(0) != 7 || m.Word(1) != 8 {
		t.Fatalf("memory = %d,%d want 7,8", m.Word(0), m.Word(1))
	}
}

func TestReadLatencyPipelined(t *testing.T) {
	for _, lat := range []int{0, 1, 3} {
		m := New("sp", 8)
		m.Load([]isa.Word{10, 11, 12, 13})
		m.SetReadLatency(lat)
		ra := channel.New("ra", 8, 0)
		rd := channel.New("rd", 8, 0)
		m.ConnectIn(PortReadAddr, ra)
		m.ConnectOut(PortReadData, rd)
		// Issue three back-to-back requests.
		ra.Send(channel.Data(0))
		ra.Send(channel.Data(1))
		ra.Send(channel.Data(2))
		ra.Tick()
		rd.Tick()
		firstAt := -1
		var got []isa.Word
		for cyc := 0; cyc < 20 && len(got) < 3; cyc++ {
			m.Step(0)
			ra.Tick()
			rd.Tick()
			if tok, ok := rd.Peek(); ok {
				if firstAt < 0 {
					firstAt = cyc
				}
				got = append(got, tok.Data)
				rd.Deq()
			}
		}
		if len(got) != 3 || got[0] != 10 || got[1] != 11 || got[2] != 12 {
			t.Fatalf("lat=%d: responses %v", lat, got)
		}
		// First response appears exactly `lat` cycles later than at
		// latency 0, and the pipeline still delivers one per cycle.
		if firstAt != lat {
			t.Errorf("lat=%d: first response at cycle %d, want %d", lat, firstAt, lat)
		}
	}
}

func TestReadLatencyPreservesTagOrder(t *testing.T) {
	m := New("sp", 4)
	m.Load([]isa.Word{7, 8})
	m.SetReadLatency(2)
	ra := channel.New("ra", 4, 0)
	rd := channel.New("rd", 4, 0)
	m.ConnectIn(PortReadAddr, ra)
	m.ConnectOut(PortReadData, rd)
	ra.Send(channel.Token{Data: 0, Tag: 2})
	ra.Send(channel.Token{Data: 1, Tag: 3})
	ra.Tick()
	rd.Tick()
	var toks []channel.Token
	for cyc := 0; cyc < 20 && len(toks) < 2; cyc++ {
		m.Step(0)
		ra.Tick()
		rd.Tick()
		if tok, ok := rd.Peek(); ok {
			toks = append(toks, tok)
			rd.Deq()
		}
	}
	if len(toks) != 2 || toks[0].Tag != 2 || toks[1].Tag != 3 || toks[0].Data != 7 || toks[1].Data != 8 {
		t.Fatalf("responses %v", toks)
	}
}
