// Package channel implements the latency-insensitive communication links
// that connect elements of a spatial fabric.
//
// A Channel is a point-to-point link carrying tagged tokens. It has a
// receiver-side FIFO of fixed capacity, a configurable wire latency, and
// credit-based flow control: a sender may only enqueue when credits remain
// (capacity minus everything queued, in flight, or staged this cycle).
//
// Channels are simulated with a two-phase protocol so that the order in
// which fabric elements are stepped within a cycle cannot change results:
// during a cycle, elements observe only committed state (Peek, CanAccept)
// and stage their effects (Send, Deq); Tick commits all staged effects and
// advances in-flight tokens by one cycle. A token sent during cycle t
// becomes visible to the receiver at cycle t+1+latency.
package channel

import (
	"fmt"

	"tia/internal/isa"
)

// Token is the unit of communication: a data word plus a small tag.
type Token struct {
	Data isa.Word
	Tag  isa.Tag
}

// String renders the token as "data" or "data#tag" when tagged.
func (t Token) String() string {
	if t.Tag == isa.TagData {
		return fmt.Sprintf("%d", t.Data)
	}
	return fmt.Sprintf("%d#%d", t.Data, t.Tag)
}

// Data wraps a word in an ordinary data token.
func Data(w isa.Word) Token { return Token{Data: w, Tag: isa.TagData} }

// EOD returns the conventional end-of-data token.
func EOD() Token { return Token{Tag: isa.TagEOD} }

type flight struct {
	tok       Token
	remaining int
}

// DeliverAction is a FaultHook's verdict on a token arriving at the
// receiver FIFO.
type DeliverAction int

const (
	// Deliver enqueues the (possibly mutated) token normally.
	Deliver DeliverAction = iota
	// Drop discards the token; the sender's credit is still freed.
	Drop
	// Dup enqueues the token twice, if a spare credit exists (otherwise
	// it degrades to Deliver; duplication must not break flow control).
	Dup
)

// FaultHook lets a fault-injection layer (internal/faults) perturb one
// channel. All three methods are consulted from Tick, i.e. in the commit
// phase, so perturbations are invisible to same-cycle observers and the
// two-phase determinism argument still holds. A hook must be a pure
// function of its own state and the per-channel event sequence (sends,
// deliveries), never of cross-channel tick order — the dense and
// event-driven steppers tick channels in different orders.
type FaultHook interface {
	// SendDelay returns extra wire latency, in cycles, for a token
	// entering the wire. Ordering is preserved regardless (the wire
	// delivers in FIFO order), so a delayed token also delays its
	// successors.
	SendDelay(tok Token) int
	// Stalled reports that the wire is frozen this tick: nothing ages and
	// nothing is delivered. Staged sends still move onto the wire.
	Stalled() bool
	// Deliver inspects a token leaving the wire for the receiver FIFO and
	// may mutate, drop or duplicate it.
	Deliver(tok Token) (Token, DeliverAction)
}

// Channel is one latency-insensitive link. The zero value is unusable; use
// New.
//
// Credit-based flow control bounds every buffer by the FIFO capacity
// (queued + in flight + staged <= capacity), so the receiver FIFO and the
// wire are fixed-size rings allocated once at New: steady-state simulation
// does not allocate.
type Channel struct {
	name     string
	capacity int
	latency  int

	queue      []Token // ring: receiver FIFO, len == capacity
	qHead      int
	qLen       int
	inflight   []flight // ring: tokens on the wire, len == capacity
	ifHead     int
	ifLen      int
	stagedSend []Token // this cycle's sends, cap == capacity
	stagedDeq  bool
	hook       FaultHook // nil in normal operation

	// Stats, cumulative since construction.
	sent      int64
	delivered int64
	consumed  int64
	maxOcc    int
}

// New returns a channel with the given FIFO capacity (>= 1) and extra wire
// latency (>= 0 cycles beyond the mandatory one-cycle registered hop).
// It panics on invalid parameters; construction paths fed by untrusted
// input should use NewChecked instead.
func New(name string, capacity, latency int) *Channel {
	c, err := NewChecked(name, capacity, latency)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewChecked is New with invalid parameters reported as an error instead
// of a panic.
func NewChecked(name string, capacity, latency int) (*Channel, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("channel %s: capacity %d < 1", name, capacity)
	}
	if latency < 0 {
		return nil, fmt.Errorf("channel %s: negative latency %d", name, latency)
	}
	c := &Channel{name: name, capacity: capacity, latency: latency}
	c.queue = make([]Token, capacity)
	if latency > 0 {
		c.inflight = make([]flight, capacity)
	}
	c.stagedSend = make([]Token, 0, capacity)
	return c, nil
}

// Name returns the channel's debug name.
func (c *Channel) Name() string { return c.name }

// Cap returns the receiver FIFO capacity.
func (c *Channel) Cap() int { return c.capacity }

// Latency returns the extra wire latency in cycles.
func (c *Channel) Latency() int { return c.latency }

// Len returns the number of committed tokens visible to the receiver.
func (c *Channel) Len() int { return c.qLen }

// InFlight returns the number of tokens on the wire, not yet visible.
func (c *Channel) InFlight() int { return c.ifLen }

// CanAccept reports whether the sender holds a credit: the FIFO has room
// for everything already queued, in flight, and staged this cycle.
func (c *Channel) CanAccept() bool {
	return c.qLen+c.ifLen+len(c.stagedSend) < c.capacity
}

// Send stages a token for transmission this cycle. The caller must have
// checked CanAccept; violating flow control is a simulator bug and panics.
func (c *Channel) Send(tok Token) {
	if !c.CanAccept() {
		panic(fmt.Sprintf("channel %s: send without credit", c.name))
	}
	c.stagedSend = append(c.stagedSend, tok)
	c.sent++
}

// Ready reports whether a committed token is visible to the receiver —
// Peek's boolean without copying the token. Compiled step closures (see
// internal/pe) use it for their channel-status scans.
func (c *Channel) Ready() bool { return c.qLen > 0 }

// HeadTag returns the committed head token's tag. The caller must have
// observed Ready; the tag of an empty channel is unspecified.
func (c *Channel) HeadTag() isa.Tag {
	return c.queue[c.qHead].Tag
}

// Peek returns the committed head token without consuming it.
func (c *Channel) Peek() (Token, bool) {
	if c.qLen == 0 {
		return Token{}, false
	}
	return c.queue[c.qHead], true
}

// Deq stages consumption of the head token this cycle. At most one dequeue
// per channel per cycle is legal (one receiver); a second is a simulator
// bug and panics, as is dequeuing an empty channel.
func (c *Channel) Deq() {
	if c.qLen == 0 {
		panic(fmt.Sprintf("channel %s: dequeue of empty channel", c.name))
	}
	if c.stagedDeq {
		panic(fmt.Sprintf("channel %s: double dequeue in one cycle", c.name))
	}
	c.stagedDeq = true
	c.consumed++
}

// Tick commits the cycle: applies the staged dequeue, moves staged sends
// onto the wire, and delivers arrivals. Call exactly once per fabric cycle.
//
// It reports whether committed state visible to an endpoint changed: a
// dequeue was applied (the head changed and a sender credit was freed) or
// tokens were delivered (the receiver gained a head). Tokens merely
// advancing along the wire are invisible — Peek, CanAccept and Len all
// count in-flight and queued tokens the same way — so they do not count
// as a change. The fabric's event-driven stepper wakes a channel's
// endpoints exactly when Tick reports a change.
func (c *Channel) Tick() bool {
	if c.hook != nil {
		return c.tickFaulty()
	}
	changed := false
	if c.stagedDeq {
		c.qHead++
		if c.qHead == c.capacity {
			c.qHead = 0
		}
		c.qLen--
		c.stagedDeq = false
		changed = true
	}
	if c.latency == 0 {
		// Zero-latency fast path: a token staged this cycle arrives this
		// tick (visible next cycle), so the wire ring is never touched.
		if len(c.stagedSend) > 0 {
			for _, tok := range c.stagedSend {
				c.enqueue(tok)
			}
			c.delivered += int64(len(c.stagedSend))
			c.stagedSend = c.stagedSend[:0]
			changed = true
		}
	} else {
		for _, tok := range c.stagedSend {
			i := c.ifHead + c.ifLen
			if i >= c.capacity {
				i -= c.capacity
			}
			c.inflight[i] = flight{tok: tok, remaining: c.latency}
			c.ifLen++
		}
		c.stagedSend = c.stagedSend[:0]
		// Deliver in-flight tokens in order; tokens never reorder, so only
		// a prefix of the wire ring can arrive.
		for c.ifLen > 0 && c.inflight[c.ifHead].remaining == 0 {
			c.enqueue(c.inflight[c.ifHead].tok)
			c.delivered++
			c.ifHead++
			if c.ifHead == c.capacity {
				c.ifHead = 0
			}
			c.ifLen--
			changed = true
		}
		i := c.ifHead
		for k := 0; k < c.ifLen; k++ {
			c.inflight[i].remaining--
			i++
			if i == c.capacity {
				i = 0
			}
		}
	}
	if c.qLen > c.maxOcc {
		c.maxOcc = c.qLen
	}
	return changed
}

// Commit is the fused per-cycle commit used by the fabric's event-driven
// steppers: one call performs Tick and classifies the post-commit state,
// saving two method calls (Idle, Quiet) per active channel per cycle.
// busy is !Idle (tokens exist somewhere); quiet means nothing is staged
// or in flight, so a further Tick would be a no-op.
func (c *Channel) Commit() (changed, busy, quiet bool) {
	changed = c.Tick()
	quiet = c.ifLen == 0 && len(c.stagedSend) == 0 && !c.stagedDeq
	busy = !quiet || c.qLen != 0
	return changed, busy, quiet
}

// SetFaultHook attaches (or, with nil, detaches) a fault hook. Attaching
// switches Tick to the wired path even on zero-latency channels (so
// jitter and stalls have a wire to act on); with a hook that injects
// nothing, that path is observationally identical to the fast path — a
// zero-latency token staged this cycle still arrives this tick — which
// the zero-rate differential tests assert.
func (c *Channel) SetFaultHook(h FaultHook) {
	if h != nil && c.inflight == nil {
		c.inflight = make([]flight, c.capacity)
	}
	c.hook = h
}

// tickFaulty is Tick with a fault hook attached: every staged token goes
// onto the wire with hook-chosen extra latency, the wire freezes while
// the hook reports a stall, and every arriving token passes through the
// hook's Deliver (mutate / drop / duplicate). Token order is never
// changed: only a remaining==0 prefix of the wire can arrive, so a
// delayed token delays its successors too.
func (c *Channel) tickFaulty() bool {
	changed := false
	if c.stagedDeq {
		c.qHead++
		if c.qHead == c.capacity {
			c.qHead = 0
		}
		c.qLen--
		c.stagedDeq = false
		changed = true
	}
	for _, tok := range c.stagedSend {
		i := c.ifHead + c.ifLen
		if i >= c.capacity {
			i -= c.capacity
		}
		extra := c.hook.SendDelay(tok)
		if extra < 0 {
			extra = 0
		}
		c.inflight[i] = flight{tok: tok, remaining: c.latency + extra}
		c.ifLen++
	}
	c.stagedSend = c.stagedSend[:0]
	if !c.hook.Stalled() {
		for c.ifLen > 0 && c.inflight[c.ifHead].remaining == 0 {
			tok := c.inflight[c.ifHead].tok
			c.ifHead++
			if c.ifHead == c.capacity {
				c.ifHead = 0
			}
			c.ifLen--
			// A token leaving the wire always changes committed state:
			// either the receiver gains a token or (on a drop) the sender
			// gains a credit.
			changed = true
			out, act := c.hook.Deliver(tok)
			switch act {
			case Drop:
			case Dup:
				c.enqueue(out)
				c.delivered++
				if c.qLen+c.ifLen+len(c.stagedSend) < c.capacity {
					c.enqueue(out)
					c.delivered++
				}
			default:
				c.enqueue(out)
				c.delivered++
			}
		}
		i := c.ifHead
		for k := 0; k < c.ifLen; k++ {
			if c.inflight[i].remaining > 0 {
				c.inflight[i].remaining--
			}
			i++
			if i == c.capacity {
				i = 0
			}
		}
	}
	if c.qLen > c.maxOcc {
		c.maxOcc = c.qLen
	}
	return changed
}

// enqueue appends a token to the receiver FIFO ring. Flow control
// guarantees room.
func (c *Channel) enqueue(tok Token) {
	i := c.qHead + c.qLen
	if i >= c.capacity {
		i -= c.capacity
	}
	c.queue[i] = tok
	c.qLen++
}

// Quiet reports that ticking the channel would be a no-op: nothing is
// staged and nothing is in flight. A quiet channel may still hold queued
// tokens (so it is not necessarily Idle); its committed state simply
// cannot change until an endpoint stages a new send or dequeue. The
// fabric's event-driven stepper drops quiet channels from its per-cycle
// tick list.
func (c *Channel) Quiet() bool {
	return c.ifLen == 0 && len(c.stagedSend) == 0 && !c.stagedDeq
}

// Idle reports whether the channel holds no tokens anywhere (queued, in
// flight, or staged). Fabric quiescence detection uses this.
func (c *Channel) Idle() bool {
	return c.qLen == 0 && c.ifLen == 0 && len(c.stagedSend) == 0 && !c.stagedDeq
}

// Stats is a snapshot of the channel's cumulative counters.
type Stats struct {
	Sent         int64 // tokens staged by the sender
	Delivered    int64 // tokens that reached the receiver FIFO
	Consumed     int64 // tokens dequeued by the receiver
	MaxOccupancy int   // high-water mark of the receiver FIFO
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats {
	return Stats{Sent: c.sent, Delivered: c.delivered, Consumed: c.consumed, MaxOccupancy: c.maxOcc}
}

// Reset empties the channel and zeroes its statistics, keeping the
// configuration. Used when re-running a program on the same fabric.
func (c *Channel) Reset() {
	c.qHead, c.qLen = 0, 0
	c.ifHead, c.ifLen = 0, 0
	c.stagedSend = c.stagedSend[:0]
	c.stagedDeq = false
	c.sent, c.delivered, c.consumed, c.maxOcc = 0, 0, 0, 0
}
