// Package channel implements the latency-insensitive communication links
// that connect elements of a spatial fabric.
//
// A Channel is a point-to-point link carrying tagged tokens. It has a
// receiver-side FIFO of fixed capacity, a configurable wire latency, and
// credit-based flow control: a sender may only enqueue when credits remain
// (capacity minus everything queued, in flight, or staged this cycle).
//
// Channels are simulated with a two-phase protocol so that the order in
// which fabric elements are stepped within a cycle cannot change results:
// during a cycle, elements observe only committed state (Peek, CanAccept)
// and stage their effects (Send, Deq); Tick commits all staged effects and
// advances in-flight tokens by one cycle. A token sent during cycle t
// becomes visible to the receiver at cycle t+1+latency.
package channel

import (
	"fmt"

	"tia/internal/isa"
)

// Token is the unit of communication: a data word plus a small tag.
type Token struct {
	Data isa.Word
	Tag  isa.Tag
}

// String renders the token as "data" or "data#tag" when tagged.
func (t Token) String() string {
	if t.Tag == isa.TagData {
		return fmt.Sprintf("%d", t.Data)
	}
	return fmt.Sprintf("%d#%d", t.Data, t.Tag)
}

// Data wraps a word in an ordinary data token.
func Data(w isa.Word) Token { return Token{Data: w, Tag: isa.TagData} }

// EOD returns the conventional end-of-data token.
func EOD() Token { return Token{Tag: isa.TagEOD} }

type flight struct {
	tok       Token
	remaining int
}

// Channel is one latency-insensitive link. The zero value is unusable; use
// New.
type Channel struct {
	name     string
	capacity int
	latency  int

	queue      []Token // arrived, visible to the receiver
	inflight   []flight
	stagedSend []Token
	stagedDeq  bool

	// Stats, cumulative since construction.
	sent      int64
	delivered int64
	consumed  int64
	maxOcc    int
}

// New returns a channel with the given FIFO capacity (>= 1) and extra wire
// latency (>= 0 cycles beyond the mandatory one-cycle registered hop).
func New(name string, capacity, latency int) *Channel {
	if capacity < 1 {
		panic(fmt.Sprintf("channel %s: capacity %d < 1", name, capacity))
	}
	if latency < 0 {
		panic(fmt.Sprintf("channel %s: negative latency %d", name, latency))
	}
	return &Channel{name: name, capacity: capacity, latency: latency}
}

// Name returns the channel's debug name.
func (c *Channel) Name() string { return c.name }

// Cap returns the receiver FIFO capacity.
func (c *Channel) Cap() int { return c.capacity }

// Latency returns the extra wire latency in cycles.
func (c *Channel) Latency() int { return c.latency }

// Len returns the number of committed tokens visible to the receiver.
func (c *Channel) Len() int { return len(c.queue) }

// InFlight returns the number of tokens on the wire, not yet visible.
func (c *Channel) InFlight() int { return len(c.inflight) }

// CanAccept reports whether the sender holds a credit: the FIFO has room
// for everything already queued, in flight, and staged this cycle.
func (c *Channel) CanAccept() bool {
	return len(c.queue)+len(c.inflight)+len(c.stagedSend) < c.capacity
}

// Send stages a token for transmission this cycle. The caller must have
// checked CanAccept; violating flow control is a simulator bug and panics.
func (c *Channel) Send(tok Token) {
	if !c.CanAccept() {
		panic(fmt.Sprintf("channel %s: send without credit", c.name))
	}
	c.stagedSend = append(c.stagedSend, tok)
	c.sent++
}

// Peek returns the committed head token without consuming it.
func (c *Channel) Peek() (Token, bool) {
	if len(c.queue) == 0 {
		return Token{}, false
	}
	return c.queue[0], true
}

// Deq stages consumption of the head token this cycle. At most one dequeue
// per channel per cycle is legal (one receiver); a second is a simulator
// bug and panics, as is dequeuing an empty channel.
func (c *Channel) Deq() {
	if len(c.queue) == 0 {
		panic(fmt.Sprintf("channel %s: dequeue of empty channel", c.name))
	}
	if c.stagedDeq {
		panic(fmt.Sprintf("channel %s: double dequeue in one cycle", c.name))
	}
	c.stagedDeq = true
	c.consumed++
}

// Tick commits the cycle: applies the staged dequeue, moves staged sends
// onto the wire, and delivers arrivals. Call exactly once per fabric cycle.
func (c *Channel) Tick() {
	if c.stagedDeq {
		c.queue = c.queue[1:]
		c.stagedDeq = false
	}
	for _, tok := range c.stagedSend {
		c.inflight = append(c.inflight, flight{tok: tok, remaining: c.latency})
	}
	c.stagedSend = c.stagedSend[:0]
	// Deliver in-flight tokens in order; tokens never reorder, so only a
	// prefix of the inflight slice can arrive.
	n := 0
	for n < len(c.inflight) && c.inflight[n].remaining == 0 {
		c.queue = append(c.queue, c.inflight[n].tok)
		c.delivered++
		n++
	}
	c.inflight = c.inflight[n:]
	for i := range c.inflight {
		c.inflight[i].remaining--
	}
	if occ := len(c.queue); occ > c.maxOcc {
		c.maxOcc = occ
	}
}

// Idle reports whether the channel holds no tokens anywhere (queued, in
// flight, or staged). Fabric quiescence detection uses this.
func (c *Channel) Idle() bool {
	return len(c.queue) == 0 && len(c.inflight) == 0 && len(c.stagedSend) == 0 && !c.stagedDeq
}

// Stats is a snapshot of the channel's cumulative counters.
type Stats struct {
	Sent         int64 // tokens staged by the sender
	Delivered    int64 // tokens that reached the receiver FIFO
	Consumed     int64 // tokens dequeued by the receiver
	MaxOccupancy int   // high-water mark of the receiver FIFO
}

// Stats returns a snapshot of the channel's counters.
func (c *Channel) Stats() Stats {
	return Stats{Sent: c.sent, Delivered: c.delivered, Consumed: c.consumed, MaxOccupancy: c.maxOcc}
}

// Reset empties the channel and zeroes its statistics, keeping the
// configuration. Used when re-running a program on the same fabric.
func (c *Channel) Reset() {
	c.queue = c.queue[:0]
	c.inflight = c.inflight[:0]
	c.stagedSend = c.stagedSend[:0]
	c.stagedDeq = false
	c.sent, c.delivered, c.consumed, c.maxOcc = 0, 0, 0, 0
}
