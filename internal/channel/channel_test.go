package channel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tia/internal/isa"
)

func TestSendVisibleNextCycle(t *testing.T) {
	c := New("c", 4, 0)
	c.Send(Data(7))
	if _, ok := c.Peek(); ok {
		t.Fatal("token visible in send cycle")
	}
	c.Tick()
	tok, ok := c.Peek()
	if !ok || tok.Data != 7 {
		t.Fatalf("Peek after Tick = %v,%v want 7,true", tok, ok)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	for lat := 0; lat <= 3; lat++ {
		c := New("c", 8, lat)
		c.Send(Data(1))
		ticks := 0
		for {
			c.Tick()
			ticks++
			if _, ok := c.Peek(); ok {
				break
			}
			if ticks > 10 {
				t.Fatalf("latency %d: never delivered", lat)
			}
		}
		if ticks != 1+lat {
			t.Errorf("latency %d: delivered after %d ticks, want %d", lat, ticks, 1+lat)
		}
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	c := New("c", 16, 2)
	var want []isa.Word
	for i := 0; i < 10; i++ {
		if i < 5 {
			c.Send(Data(isa.Word(i)))
			want = append(want, isa.Word(i))
		}
		c.Tick()
	}
	var got []isa.Word
	for {
		tok, ok := c.Peek()
		if !ok {
			break
		}
		got = append(got, tok.Data)
		c.Deq()
		c.Tick()
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCreditFlowControl(t *testing.T) {
	c := New("c", 2, 3)
	if !c.CanAccept() {
		t.Fatal("fresh channel refuses token")
	}
	c.Send(Data(1))
	c.Send(Data(2))
	if c.CanAccept() {
		t.Fatal("accepted beyond capacity (inflight must count)")
	}
	// Even after many ticks without consumption, no credit returns.
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if c.CanAccept() {
		t.Fatal("credit returned without consumption")
	}
	c.Deq()
	if c.CanAccept() {
		t.Fatal("credit returned before commit")
	}
	c.Tick()
	if !c.CanAccept() {
		t.Fatal("credit not returned after consume+commit")
	}
}

func TestPanicsOnProtocolViolations(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("send without credit", func() {
		c := New("c", 1, 0)
		c.Send(Data(1))
		c.Send(Data(2))
	})
	expectPanic("deq empty", func() {
		c := New("c", 1, 0)
		c.Deq()
	})
	expectPanic("double deq", func() {
		c := New("c", 2, 0)
		c.Send(Data(1))
		c.Tick()
		c.Deq()
		c.Deq()
	})
	expectPanic("zero capacity", func() { New("c", 0, 0) })
	expectPanic("negative latency", func() { New("c", 1, -1) })
}

func TestIdleAndReset(t *testing.T) {
	c := New("c", 4, 1)
	if !c.Idle() {
		t.Fatal("fresh channel not idle")
	}
	c.Send(Data(9))
	if c.Idle() {
		t.Fatal("idle with staged send")
	}
	c.Tick()
	if c.Idle() {
		t.Fatal("idle with inflight token")
	}
	c.Tick()
	if c.Idle() {
		t.Fatal("idle with queued token")
	}
	c.Reset()
	if !c.Idle() || c.Len() != 0 {
		t.Fatal("Reset did not empty channel")
	}
	if s := c.Stats(); s.Sent != 0 || s.Delivered != 0 {
		t.Fatalf("Reset kept stats: %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New("c", 4, 0)
	c.Send(Data(1))
	c.Send(Data(2))
	c.Tick()
	c.Deq()
	c.Tick()
	s := c.Stats()
	if s.Sent != 2 || s.Delivered != 2 || s.Consumed != 1 {
		t.Errorf("stats = %+v, want sent=2 delivered=2 consumed=1", s)
	}
	if s.MaxOccupancy != 2 {
		t.Errorf("MaxOccupancy = %d, want 2", s.MaxOccupancy)
	}
}

// Property: under a random schedule of sends and consumes, the receiver
// observes exactly the sent sequence, in order, regardless of capacity and
// latency, and flow control is never violated.
func TestRandomScheduleDeliversInOrder(t *testing.T) {
	f := func(capSeed, latSeed uint8, seed int64) bool {
		capacity := 1 + int(capSeed%8)
		latency := int(latSeed % 5)
		rng := rand.New(rand.NewSource(seed))
		c := New("c", capacity, latency)
		const n = 50
		sent, got := []isa.Word{}, []isa.Word{}
		next := isa.Word(0)
		for cycle := 0; cycle < 2000 && len(got) < n; cycle++ {
			if len(sent) < n && rng.Intn(2) == 0 && c.CanAccept() {
				c.Send(Data(next))
				sent = append(sent, next)
				next++
			}
			if tok, ok := c.Peek(); ok && rng.Intn(3) != 0 {
				got = append(got, tok.Data)
				c.Deq()
			}
			c.Tick()
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != sent[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy (queued + inflight + staged) never exceeds capacity.
func TestOccupancyBoundedProperty(t *testing.T) {
	f := func(capSeed, latSeed uint8, seed int64) bool {
		capacity := 1 + int(capSeed%6)
		latency := int(latSeed % 4)
		rng := rand.New(rand.NewSource(seed))
		c := New("c", capacity, latency)
		for cycle := 0; cycle < 500; cycle++ {
			for c.CanAccept() && rng.Intn(2) == 0 {
				c.Send(Data(isa.Word(cycle)))
			}
			if _, ok := c.Peek(); ok && rng.Intn(2) == 0 {
				c.Deq()
			}
			if c.Len()+c.InFlight() > capacity {
				return false
			}
			c.Tick()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTokenString(t *testing.T) {
	if s := Data(5).String(); s != "5" {
		t.Errorf("Data(5) = %q", s)
	}
	if s := EOD().String(); s != "0#1" {
		t.Errorf("EOD() = %q", s)
	}
}
