package channel

import (
	"testing"

	"tia/internal/isa"
)

// BenchmarkSendPeekDeqTick measures one full token cycle through a
// channel, the innermost operation of every simulation.
func BenchmarkSendPeekDeqTick(b *testing.B) {
	c := New("c", 4, 0)
	for i := 0; i < b.N; i++ {
		if c.CanAccept() {
			c.Send(Data(isa.Word(i)))
		}
		if _, ok := c.Peek(); ok {
			c.Deq()
		}
		c.Tick()
	}
}

// BenchmarkTickLatency measures commit cost with tokens in flight.
func BenchmarkTickLatency(b *testing.B) {
	c := New("c", 8, 3)
	for i := 0; i < b.N; i++ {
		if c.CanAccept() {
			c.Send(Data(isa.Word(i)))
		}
		if _, ok := c.Peek(); ok {
			c.Deq()
		}
		c.Tick()
	}
}
