package channel

// Regression gates for channel buffer reuse: Reset and RestoreState
// must keep the capacity of every ring and staging buffer allocated by
// New. A channel that regrew stagedSend (or the rings) per reset would
// put an allocation inside every fabric reset loop — core's
// verification reuse, campaign sweeps, the service's job loop — and
// break the fabric-level zero-allocation gates (see
// internal/fabric/alloc_test.go).

import (
	"testing"

	"tia/internal/snapshot"
)

// churn drives the channel through a full staging cycle: fill to
// capacity, commit, drain one.
func churn(c *Channel) {
	for c.CanAccept() {
		c.Send(Data(7))
	}
	c.Tick()
	if _, ok := c.Peek(); ok {
		c.Deq()
		c.Tick()
	}
}

// TestResetReusesCapacity: steady-state Reset+refill allocates nothing.
func TestResetReusesCapacity(t *testing.T) {
	for _, latency := range []int{0, 2} {
		c := New("c", 4, latency)
		churn(c) // warm
		avg := testing.AllocsPerRun(100, func() {
			c.Reset()
			churn(c)
		})
		if avg != 0 {
			t.Errorf("latency %d: Reset+refill allocates %.1f times per run, want 0", latency, avg)
		}
	}
}

// TestRestoreReusesCapacity: RestoreState refills the buffers New
// allocated instead of replacing them. Identity of the backing arrays
// is checked directly (an in-package test can), because AllocsPerRun
// around a restore would also count the decoder's own setup.
func TestRestoreReusesCapacity(t *testing.T) {
	c := New("c", 4, 1)
	for c.CanAccept() {
		c.Send(Data(3))
	}
	c.Tick()
	var e snapshot.Encoder
	c.SnapshotState(&e)

	queue := &c.queue[0]
	inflight := &c.inflight[0]
	staged := &c.stagedSend[:1][0]
	if err := c.RestoreState(snapshot.NewDecoder(e.Data())); err != nil {
		t.Fatal(err)
	}
	if &c.queue[0] != queue {
		t.Error("RestoreState replaced the receiver FIFO ring")
	}
	if &c.inflight[0] != inflight {
		t.Error("RestoreState replaced the wire ring")
	}
	if &c.stagedSend[:1][0] != staged {
		t.Error("RestoreState replaced the staged-send buffer")
	}
	if cap(c.stagedSend) != c.capacity {
		t.Errorf("staged-send capacity %d after restore, want %d", cap(c.stagedSend), c.capacity)
	}
}
