package channel

import (
	"fmt"

	"tia/internal/isa"
	"tia/internal/snapshot"
)

// SnapshotState serializes the channel's architectural state: the
// receiver FIFO, the wire (tokens plus remaining hops), any staged
// effects, and the cumulative statistics. Checkpoints are taken at cycle
// boundaries — after Tick, before any element steps — where staged state
// is empty, but it is encoded anyway so the format is total over every
// reachable Channel value.
func (c *Channel) SnapshotState(e *snapshot.Encoder) {
	e.Int(c.qLen)
	for k := 0; k < c.qLen; k++ {
		i := c.qHead + k
		if i >= c.capacity {
			i -= c.capacity
		}
		encodeToken(e, c.queue[i])
	}
	e.Int(c.ifLen)
	for k := 0; k < c.ifLen; k++ {
		i := c.ifHead + k
		if i >= c.capacity {
			i -= c.capacity
		}
		encodeToken(e, c.inflight[i].tok)
		e.Int(c.inflight[i].remaining)
	}
	e.Int(len(c.stagedSend))
	for _, tok := range c.stagedSend {
		encodeToken(e, tok)
	}
	e.Bool(c.stagedDeq)
	e.I64(c.sent)
	e.I64(c.delivered)
	e.I64(c.consumed)
	e.Int(c.maxOcc)
}

// RestoreState rebuilds the channel from a snapshot taken on a channel
// with identical configuration (same capacity and latency — guaranteed
// by the fingerprint check in fabric.Restore). Ring contents are
// re-laid-out from head 0; ring phase is not architectural state.
func (c *Channel) RestoreState(d *snapshot.Decoder) error {
	qLen := d.Count()
	if d.Err() == nil && qLen > c.capacity {
		return fmt.Errorf("channel %s: snapshot queue length %d exceeds capacity %d", c.name, qLen, c.capacity)
	}
	c.qHead, c.qLen = 0, 0
	for k := 0; k < qLen && d.Err() == nil; k++ {
		c.enqueue(decodeToken(d))
	}
	ifLen := d.Count()
	if d.Err() == nil && ifLen > c.capacity {
		return fmt.Errorf("channel %s: snapshot wire length %d exceeds capacity %d", c.name, ifLen, c.capacity)
	}
	if ifLen > 0 && c.inflight == nil {
		// A zero-latency channel only grows a wire when a fault hook is
		// attached; a snapshot with in-flight tokens implies the source
		// fabric had one, and Restore re-attaches hooks before state.
		return fmt.Errorf("channel %s: snapshot has %d in-flight tokens but channel has no wire", c.name, ifLen)
	}
	c.ifHead, c.ifLen = 0, 0
	for k := 0; k < ifLen && d.Err() == nil; k++ {
		tok := decodeToken(d)
		rem := d.Int()
		if d.Err() == nil && rem < 0 {
			return fmt.Errorf("channel %s: negative in-flight remaining %d", c.name, rem)
		}
		c.inflight[k] = flight{tok: tok, remaining: rem}
		c.ifLen++
	}
	nStaged := d.Count()
	if d.Err() == nil && nStaged > c.capacity {
		return fmt.Errorf("channel %s: snapshot staged length %d exceeds capacity %d", c.name, nStaged, c.capacity)
	}
	c.stagedSend = c.stagedSend[:0]
	for k := 0; k < nStaged && d.Err() == nil; k++ {
		c.stagedSend = append(c.stagedSend, decodeToken(d))
	}
	c.stagedDeq = d.Bool()
	c.sent = d.I64()
	c.delivered = d.I64()
	c.consumed = d.I64()
	c.maxOcc = d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("channel %s: %w", c.name, err)
	}
	if c.qLen+c.ifLen+len(c.stagedSend) > c.capacity {
		return fmt.Errorf("channel %s: snapshot violates flow control (%d queued + %d in flight + %d staged > capacity %d)",
			c.name, c.qLen, c.ifLen, len(c.stagedSend), c.capacity)
	}
	return nil
}

func encodeToken(e *snapshot.Encoder, tok Token) {
	e.U64(uint64(tok.Data))
	e.U64(uint64(tok.Tag))
}

func decodeToken(d *snapshot.Decoder) Token {
	data := d.U64()
	tag := d.U64()
	return Token{Data: isa.Word(data), Tag: isa.Tag(tag)}
}
