package area

import "testing"

func TestFabricComposition(t *testing.T) {
	if got, want := Fabric(0, 0), 0.0; got != want {
		t.Errorf("empty fabric area = %v", got)
	}
	withMem := Fabric(2, 100)
	without := Fabric(2, 0)
	if withMem <= without {
		t.Error("scratchpad words must add area")
	}
	if diff := Fabric(3, 0) - 3*TIAPE; diff > 1e-9 || diff < -1e-9 {
		t.Error("PE area not linear")
	}
}

func TestSchedulerPremium(t *testing.T) {
	if TIAPE <= PCPE {
		t.Error("triggered scheduler should cost a premium over a PC sequencer")
	}
	if (TIAPE-PCPE)/PCPE > 0.25 {
		t.Error("scheduler premium should be modest (the paper's claim)")
	}
}

func TestPEsPerCore(t *testing.T) {
	n := PEsPerCore()
	// The paper's framing: many PEs fit in one core's footprint.
	if n < 8 || n > 64 {
		t.Errorf("PEs per core = %.1f, outside the plausible band", n)
	}
}

func TestPCFabricCheaper(t *testing.T) {
	if PCFabric(4, 128) >= Fabric(4, 128) {
		t.Error("PC fabric should be slightly smaller")
	}
}
