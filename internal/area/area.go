// Package area provides the silicon-area and core-performance model
// behind the paper's area-normalized performance comparison (the "8X over
// a traditional general-purpose processor" result).
//
// The paper synthesized RTL and used industrial area numbers plus
// measurements of a real superscalar core; neither is reproducible here,
// so this package substitutes explicit constants with the same *shape*:
//
//   - a triggered PE (datapath + scheduler + its share of the fabric
//     interconnect and channel buffering) is a small fraction of a
//     general-purpose core;
//   - the triggered scheduler costs a modest premium over a PC sequencer;
//   - scratchpads pay a fixed periphery cost plus a per-word SRAM cost;
//   - the comparison core is superscalar, sustaining about 2 IPC on these
//     kernels, while package gpp models a 1-IPC-peak in-order core — the
//     GPPIPC factor bridges the two.
//
// The absolute values are synthetic and calibrated to land the suite's
// area-normalized geomean in the paper's regime; EXPERIMENTS.md reports
// the calibration and the sensitivity of the final ratio to it.
package area

// All areas are in mm² at the model's reference process node.
const (
	// TIAPE is one triggered-instruction PE — datapath, register and
	// predicate files, triggered-instruction store, scheduler — plus its
	// amortized share of fabric interconnect and channel buffers.
	TIAPE = 0.30
	// PCPE is one PC-style PE: same datapath and interconnect share,
	// with a program counter and branch unit instead of the scheduler.
	PCPE = 0.27
	// GPPCore is the superscalar comparison core including L1 caches.
	GPPCore = 4.5
	// ScratchpadPerWord is the incremental SRAM cost per 32-bit word,
	// including the inefficiency of small arrays.
	ScratchpadPerWord = 0.0005
	// ScratchpadFixed is the per-instance periphery cost of a
	// scratchpad element (decoders, ports, channel interfaces).
	ScratchpadFixed = 0.05
)

// GPPIPC converts the in-order gpp model's cycle counts into the
// effective cycles of the paper's superscalar comparison core.
const GPPIPC = 2.0

// Fabric returns the area of a spatial fabric with the given number of
// triggered PEs and total scratchpad words.
func Fabric(numPEs, scratchpadWords int) float64 {
	return float64(numPEs)*TIAPE + scratchpad(scratchpadWords)
}

// PCFabric returns the area of the PC-style baseline fabric.
func PCFabric(numPEs, scratchpadWords int) float64 {
	return float64(numPEs)*PCPE + scratchpad(scratchpadWords)
}

func scratchpad(words int) float64 {
	if words == 0 {
		return 0
	}
	return ScratchpadFixed + float64(words)*ScratchpadPerWord
}

// PEsPerCore reports how many triggered PEs fit in one comparison core's
// area — the provisioning the paper's area-normalized comparison assumes
// when it replicates kernel instances across the fabric.
func PEsPerCore() float64 { return GPPCore / TIAPE }
