package pe

import (
	"fmt"

	"tia/internal/isa"
	"tia/internal/snapshot"
)

// SnapshotState serializes the PE's architectural and accounting state:
// register file, predicate bitmap, halt flag, round-robin offset, the
// last stall classification (needed so SkipCycles backfills identically
// after restore), and cumulative statistics. The per-cycle status caches
// (inReady/outReady/headTags) are rebuilt at the top of every stepped
// cycle, so they are not state.
func (p *PE) SnapshotState(e *snapshot.Encoder) {
	e.Int(len(p.regs))
	for _, r := range p.regs {
		e.U64(uint64(r))
	}
	e.U64(p.predBits)
	e.Bool(p.halted)
	e.Int(p.rrOffset)
	e.U64(uint64(p.lastStall))
	e.I64(p.stats.Fired)
	e.I64(p.stats.IdleCycles)
	e.I64(p.stats.InputStall)
	e.I64(p.stats.OutputStall)
	e.I64(p.stats.Cycles)
	e.Int(len(p.stats.PerInst))
	for _, n := range p.stats.PerInst {
		e.I64(n)
	}
}

// RestoreState rebuilds the PE from a snapshot of an identically
// configured PE running the identical program (the fingerprint check in
// fabric.Restore guarantees both).
func (p *PE) RestoreState(d *snapshot.Decoder) error {
	nRegs := d.Count()
	if d.Err() == nil && nRegs != len(p.regs) {
		return fmt.Errorf("pe %s: snapshot has %d registers, PE has %d", p.name, nRegs, len(p.regs))
	}
	for i := 0; i < nRegs && d.Err() == nil; i++ {
		p.regs[i] = isa.Word(d.U64())
	}
	p.predBits = d.U64()
	p.halted = d.Bool()
	p.rrOffset = d.Int()
	if d.Err() == nil && (p.rrOffset < 0 || (len(p.prog) > 0 && p.rrOffset >= len(p.prog))) {
		return fmt.Errorf("pe %s: snapshot round-robin offset %d out of range", p.name, p.rrOffset)
	}
	stall := d.U64()
	if d.Err() == nil && stall > uint64(stallOutput) {
		return fmt.Errorf("pe %s: snapshot stall kind %d unknown", p.name, stall)
	}
	p.lastStall = stallKind(stall)
	p.stats.Fired = d.I64()
	p.stats.IdleCycles = d.I64()
	p.stats.InputStall = d.I64()
	p.stats.OutputStall = d.I64()
	p.stats.Cycles = d.I64()
	nInst := d.Count()
	if d.Err() == nil && nInst != len(p.stats.PerInst) {
		return fmt.Errorf("pe %s: snapshot has %d per-instruction counters, program has %d", p.name, nInst, len(p.stats.PerInst))
	}
	for i := 0; i < nInst && d.Err() == nil; i++ {
		p.stats.PerInst[i] = d.I64()
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("pe %s: %w", p.name, err)
	}
	// Restored values may differ from the state a compiled step closure
	// folded constants against; force recompilation before the next run.
	p.invalidateCompiled()
	return nil
}
