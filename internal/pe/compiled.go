package pe

// Closure-compiled stepping: CompileStep specializes this PE's trigger
// pool into a step function with the interpreter's exact observable
// semantics (fires, stalls, statistics, traces — bit-identical, the
// differential tests in package workloads sweep a `compiled` mode
// against the interpreter oracle on every contract).
//
// The specialization is staged (threaded code, the Verilator idea at
// closure granularity):
//
//   - internal/compile partially evaluates the program: dead triggers
//     drop out of the dispatch loop, statically-true predicate literals
//     leave the residual guard, constant operands fold, constant-operand
//     instructions fold to a constant result.
//   - Each surviving instruction's fire sequence (operand reads, ALU op,
//     destination writes, dequeues, predicate updates, halt) is fused
//     into one closure over resolved *channel.Channel pointers — no
//     per-fire source-kind switches, arity lookups or port-table
//     indexing.
//   - The per-cycle channel-status scan is specialized to the channels
//     the live instructions can observe, via channel.Ready instead of
//     token-copying Peeks.
//   - A pool with a single live trigger collapses to a direct
//     guard-and-fire closure: no masks, no dispatch loop at all.
//
// The compiled form covers the default scheduler (priority policy,
// single issue, bitmask classification). Everything else — round-robin
// rotation, the superscalar scheduler, the slice-walking reference
// scheduler — falls back to the interpreter, which stays the oracle.
// That keeps the exotic paths on the code the differential tests pin
// hardest, and costs nothing: those modes are ablation studies, not the
// measured configuration.
//
// Staleness: closures capture register/predicate constants and channel
// pointers, so anything that could invalidate them (SetReg, SetPred,
// scheduler knobs, port wiring, snapshot restore) bumps a generation
// counter; CompileStep reuses the cached closure only while the
// generation matches. The fabric re-queries CompileStep at the top of
// every run (see fabric.RunContext), so a stale closure is never
// entered.

import (
	"fmt"

	"tia/internal/channel"
	"tia/internal/compile"
	"tia/internal/isa"
)

// invalidateCompiled marks any cached compiled step function stale.
func (p *PE) invalidateCompiled() { p.compileGen++ }

// CompileStep returns a step function with Step's exact semantics,
// specialized to the PE's current program, constant state and wiring.
// The result is cached until the PE changes in a way that could affect
// it; callers (the fabric's dispatch table) re-query per run rather
// than holding closures across mutations.
func (p *PE) CompileStep() func(cycle int64) bool {
	if p.compiledStep == nil || p.compiledFor != p.compileGen {
		p.compiledStep = p.buildCompiledStep()
		p.compiledFor = p.compileGen
	}
	return p.compiledStep
}

// buildCompiledStep constructs the specialized step function, or falls
// back to the interpreter for configurations it does not specialize.
func (p *PE) buildCompiledStep() func(cycle int64) bool {
	if p.reference || p.issueWidth > 1 || p.policy == SchedRoundRobin {
		return p.Step
	}
	plan := compile.Analyzed(p.cfg, p.Program(), p.regs, p.predBits)
	// Resolve the channels the live instructions touch; a partially
	// wired PE (possible in unit harnesses that never run a fabric)
	// falls back to the interpreter rather than capturing nil ports.
	for _, ri := range plan.Live {
		if !p.connected(&p.prog[ri.Index]) {
			return p.Step
		}
	}

	switch len(plan.Live) {
	case 0:
		// Nothing can ever trigger: every cycle classifies idle.
		return func(int64) bool {
			if p.halted {
				return false
			}
			p.stats.Cycles++
			p.stats.IdleCycles++
			p.lastStall = stallIdle
			return false
		}
	case 1:
		return p.compileSingle(plan.Live[0])
	default:
		return p.compileMulti(plan.Live)
	}
}

// cTag is a compiled head-tag condition over a resolved channel. Tag
// conditions are only evaluated once every required input is ready
// (isa.Instruction.ImplicitInputs includes every trigger channel), so
// HeadTag needs no emptiness check.
type cTag struct {
	ch  *channel.Channel
	tag isa.Tag
	eq  bool
}

func (p *PE) compileTags(ci *compiled) []cTag {
	if len(ci.tagConds) == 0 {
		return nil
	}
	tags := make([]cTag, len(ci.tagConds))
	for i, tc := range ci.tagConds {
		tags[i] = cTag{ch: p.in[tc.ch], tag: tc.tag, eq: tc.eq}
	}
	return tags
}

// maskChannels resolves a channel bitmask against a port table.
func maskChannels(mask uint64, ports []*channel.Channel) []*channel.Channel {
	var out []*channel.Channel
	for i, ch := range ports {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, ch)
		}
	}
	return out
}

// compileSingle builds the direct guard-and-fire closure for a pool with
// one live trigger. Check order mirrors classifyFast (predicates →
// inputs → tags → outputs), and each early-out performs exactly the
// stall accounting the interpreter's no-fire epilogue would.
func (p *PE) compileSingle(ri compile.Inst) func(cycle int64) bool {
	ci := &p.prog[ri.Index]
	predMask, predVal := ri.PredMask, ri.PredVal
	ins := maskChannels(ci.inMask, p.in)
	outs := maskChannels(ci.outMask, p.out)
	tags := p.compileTags(ci)
	fire := p.compileFire(ri)
	return func(cycle int64) bool {
		if p.halted {
			return false
		}
		p.stats.Cycles++
		if p.predBits&predMask != predVal {
			p.stats.IdleCycles++
			p.lastStall = stallIdle
			return false
		}
		for _, ch := range ins {
			if !ch.Ready() {
				p.stats.InputStall++
				p.lastStall = stallInput
				return false
			}
		}
		for _, tc := range tags {
			if (tc.ch.HeadTag() == tc.tag) != tc.eq {
				// Tag mismatch is "not triggered", like a predicate miss.
				p.stats.IdleCycles++
				p.lastStall = stallIdle
				return false
			}
		}
		for _, ch := range outs {
			if !ch.CanAccept() {
				p.stats.OutputStall++
				p.lastStall = stallOutput
				return false
			}
		}
		fire(cycle)
		return true
	}
}

// cRow is one live instruction's residual classification state — the
// hot part of the dispatch loop, kept to 32 bytes (two rows per cache
// line) so the priority scan streams. The cold per-instruction data
// (tag conditions, fire closure) lives in the parallel cAct slice and
// is only touched when a row survives the mask checks.
type cRow struct {
	predMask, predVal uint64
	inMask, outMask   uint64
}

// cAct is the cold counterpart of cRow.
type cAct struct {
	tags []cTag
	fire func(cycle int64)
}

// scanBit is one channel of the specialized status scan.
type scanBit struct {
	ch  *channel.Channel
	bit uint64
}

// compileMulti builds the dispatch loop over the live instructions:
// the interpreter's priority scan with the dead rows removed, operating
// on locally computed status words from a scan restricted to channels
// the live instructions observe.
func (p *PE) compileMulti(live []compile.Inst) func(cycle int64) bool {
	rows := make([]cRow, len(live))
	acts := make([]cAct, len(live))
	var inU, outU uint64
	for k, ri := range live {
		ci := &p.prog[ri.Index]
		rows[k] = cRow{
			predMask: ri.PredMask, predVal: ri.PredVal,
			inMask: ci.inMask, outMask: ci.outMask,
		}
		acts[k] = cAct{
			tags: p.compileTags(ci),
			fire: p.compileFire(ri),
		}
		inU |= ci.inMask | ci.deqMask
		for _, tc := range ci.tagConds {
			inU |= 1 << uint(tc.ch)
		}
		outU |= ci.outMask
	}
	var scanIn, scanOut []scanBit
	for i, ch := range p.in {
		if inU&(1<<uint(i)) != 0 && ch != nil {
			scanIn = append(scanIn, scanBit{ch: ch, bit: 1 << uint(i)})
		}
	}
	for i, ch := range p.out {
		if outU&(1<<uint(i)) != 0 && ch != nil {
			scanOut = append(scanOut, scanBit{ch: ch, bit: 1 << uint(i)})
		}
	}
	return func(cycle int64) bool {
		if p.halted {
			return false
		}
		p.stats.Cycles++
		var inR, outR uint64
		for i := range scanIn {
			if scanIn[i].ch.Ready() {
				inR |= scanIn[i].bit
			}
		}
		// The output scan is lazy: on input-stalled cycles (the common
		// stall in dataflow kernels) no instruction reaches its output
		// check and the CanAccept sweep never happens.
		outScanned := false
		sawInputWait, sawOutputWait := false, false
		preds := p.predBits
	scan:
		for k := range rows {
			ci := &rows[k]
			if preds&ci.predMask != ci.predVal {
				continue
			}
			if ci.inMask&^inR != 0 {
				sawInputWait = true
				continue
			}
			for _, tc := range acts[k].tags {
				if (tc.ch.HeadTag() == tc.tag) != tc.eq {
					continue scan
				}
			}
			if ci.outMask != 0 {
				if !outScanned {
					outScanned = true
					for i := range scanOut {
						if scanOut[i].ch.CanAccept() {
							outR |= scanOut[i].bit
						}
					}
				}
				if ci.outMask&^outR != 0 {
					sawOutputWait = true
					continue
				}
			}
			acts[k].fire(cycle)
			return true
		}
		switch {
		case sawOutputWait:
			p.stats.OutputStall++
			p.lastStall = stallOutput
		case sawInputWait:
			p.stats.InputStall++
			p.lastStall = stallInput
		default:
			p.stats.IdleCycles++
			p.lastStall = stallIdle
		}
		return false
	}
}

// cOut is one resolved output destination.
type cOut struct {
	ch  *channel.Channel
	tag isa.Tag
}

// compileFire fuses one instruction's whole fire sequence — operand
// reads, ALU evaluation, destination writes, dequeues, predicate
// updates, halt, statistics, trace — into a single closure over
// resolved channel pointers and folded constants.
func (p *PE) compileFire(ri compile.Inst) func(cycle int64) {
	ci := &p.prog[ri.Index]
	op := ci.inst.Op
	var eval func() isa.Word
	switch {
	case ri.Folded:
		v := ri.FoldedVal
		eval = func() isa.Word { return v }
	case op.Arity() == 1:
		ra := p.compileReader(ci.inst.Srcs[0], ri, 0)
		if op == isa.OpMov {
			eval = ra
		} else {
			eval = func() isa.Word { return op.Eval(ra(), 0) }
		}
	default:
		ra := p.compileReader(ci.inst.Srcs[0], ri, 0)
		rb := p.compileReader(ci.inst.Srcs[1], ri, 1)
		eval = func() isa.Word { return op.Eval(ra(), rb()) }
	}
	regDsts := append([]int(nil), ci.regDsts...)
	outs := make([]cOut, len(ci.outDsts))
	for i, d := range ci.outDsts {
		outs[i] = cOut{ch: p.out[d.ch], tag: d.tag}
	}
	deqs := make([]*channel.Channel, len(ci.inst.Deq))
	for i, ch := range ci.inst.Deq {
		deqs[i] = p.in[ch]
	}
	prDstMask, prUpdSet, prUpdClr := ci.prDstMask, ci.prUpdSet, ci.prUpdClr
	halt := op == isa.OpHalt
	idx := ri.Index
	return func(cycle int64) {
		result := eval()
		for _, r := range regDsts {
			p.regs[r] = result
		}
		for i := range outs {
			outs[i].ch.Send(channel.Token{Data: result, Tag: outs[i].tag})
		}
		if result != 0 {
			p.predBits |= prDstMask
		} else {
			p.predBits &^= prDstMask
		}
		for _, ch := range deqs {
			ch.Deq()
		}
		p.predBits = p.predBits&^prUpdClr | prUpdSet
		if halt {
			p.halted = true
		}
		p.stats.Fired++
		p.stats.PerInst[idx]++
		if p.Trace != nil {
			p.Trace(cycle, idx, result)
		}
	}
}

// compileReader builds one operand's read closure: folded constants are
// captured values, register reads index the live register file, channel
// reads peek resolved channels (keeping the interpreter's empty-channel
// panic as the scheduler-bug tripwire).
func (p *PE) compileReader(s isa.Src, ri compile.Inst, slot int) func() isa.Word {
	if ri.SrcConst[slot] {
		v := ri.SrcVal[slot]
		return func() isa.Word { return v }
	}
	switch s.Kind {
	case isa.SrcReg:
		r := s.Index
		return func() isa.Word { return p.regs[r] }
	case isa.SrcIn:
		ch := p.in[s.Index]
		idx := s.Index
		return func() isa.Word {
			tok, ok := ch.Peek()
			if !ok {
				panic(fmt.Sprintf("pe %s: read of empty channel in%d (scheduler bug)", p.name, idx))
			}
			return tok.Data
		}
	case isa.SrcInTag:
		ch := p.in[s.Index]
		idx := s.Index
		return func() isa.Word {
			tok, ok := ch.Peek()
			if !ok {
				panic(fmt.Sprintf("pe %s: tag read of empty channel in%d (scheduler bug)", p.name, idx))
			}
			return isa.Word(tok.Tag)
		}
	default:
		panic(fmt.Sprintf("pe %s: compile of invalid source kind %d", p.name, s.Kind))
	}
}
