package pe

import "tia/internal/isa"

// MergeProgram returns the paper's running example: a triggered program
// that merges two sorted input streams (in0, in1, EOD-terminated) into one
// sorted output stream on out0, followed by an EOD token.
//
// The program is eight static instructions. In steady state each merged
// element costs exactly two fires (one compare that writes predicate p0
// from the ALU result, one data move); the drain phase after one stream
// ends costs one fire per element. A program-counter expression of the
// same kernel needs explicit peeks, compares, and branches — see package
// pcpe for the baseline used in the paper's comparison.
//
// Predicate roles: p0 = comparison outcome (in0 <= in1), p1 = comparison
// valid, p2 = in0 exhausted, p3 = in1 exhausted.
func MergeProgram() []isa.Instruction {
	return []isa.Instruction{
		{
			Label: "cmp",
			Trigger: isa.When(
				[]isa.PredLit{isa.NotP(1), isa.NotP(2), isa.NotP(3)},
				[]isa.InputCond{isa.InTagEq(0, isa.TagData), isa.InTagEq(1, isa.TagData)},
			),
			Op:          isa.OpLEU,
			Srcs:        [2]isa.Src{isa.In(0), isa.In(1)},
			Dsts:        []isa.Dst{isa.DPred(0)},
			PredUpdates: []isa.PredUpdate{isa.SetP(1)},
		},
		{
			Label:       "sendA",
			Trigger:     isa.When([]isa.PredLit{isa.P(1), isa.P(0)}, nil),
			Op:          isa.OpMov,
			Srcs:        [2]isa.Src{isa.In(0), {}},
			Dsts:        []isa.Dst{isa.DOut(0, isa.TagData)},
			Deq:         []int{0},
			PredUpdates: []isa.PredUpdate{isa.ClrP(1)},
		},
		{
			Label:       "sendB",
			Trigger:     isa.When([]isa.PredLit{isa.P(1), isa.NotP(0)}, nil),
			Op:          isa.OpMov,
			Srcs:        [2]isa.Src{isa.In(1), {}},
			Dsts:        []isa.Dst{isa.DOut(0, isa.TagData)},
			Deq:         []int{1},
			PredUpdates: []isa.PredUpdate{isa.ClrP(1)},
		},
		{
			Label: "eodA",
			Trigger: isa.When(
				[]isa.PredLit{isa.NotP(1), isa.NotP(2)},
				[]isa.InputCond{isa.InTagEq(0, isa.TagEOD)},
			),
			Op:          isa.OpNop,
			Deq:         []int{0},
			PredUpdates: []isa.PredUpdate{isa.SetP(2)},
		},
		{
			Label: "eodB",
			Trigger: isa.When(
				[]isa.PredLit{isa.NotP(1), isa.NotP(3)},
				[]isa.InputCond{isa.InTagEq(1, isa.TagEOD)},
			),
			Op:          isa.OpNop,
			Deq:         []int{1},
			PredUpdates: []isa.PredUpdate{isa.SetP(3)},
		},
		{
			Label: "drainA",
			Trigger: isa.When(
				[]isa.PredLit{isa.P(3), isa.NotP(2)},
				[]isa.InputCond{isa.InTagEq(0, isa.TagData)},
			),
			Op:   isa.OpMov,
			Srcs: [2]isa.Src{isa.In(0), {}},
			Dsts: []isa.Dst{isa.DOut(0, isa.TagData)},
			Deq:  []int{0},
		},
		{
			Label: "drainB",
			Trigger: isa.When(
				[]isa.PredLit{isa.P(2), isa.NotP(3)},
				[]isa.InputCond{isa.InTagEq(1, isa.TagData)},
			),
			Op:   isa.OpMov,
			Srcs: [2]isa.Src{isa.In(1), {}},
			Dsts: []isa.Dst{isa.DOut(0, isa.TagData)},
			Deq:  []int{1},
		},
		{
			Label:   "fin",
			Trigger: isa.When([]isa.PredLit{isa.P(2), isa.P(3)}, nil),
			Op:      isa.OpHalt,
			Dsts:    []isa.Dst{isa.DOut(0, isa.TagEOD)},
		},
	}
}
