package pe

import (
	"tia/internal/channel"
	"tia/internal/isa"
)

// stepWide is the superscalar trigger scheduler: fire up to issueWidth
// ready, non-conflicting instructions in one cycle with parallel
// semantics (see SetIssueWidth). Structural conflicts are resolved with
// the compiled per-instruction bitmasks — one AND against the used-output
// / used-dequeue / written-register / written-predicate accumulators
// replaces the per-destination map lookups of the original scheduler.
func (p *PE) stepWide(cycle int64) bool {
	p.stats.Cycles++
	if !p.reference {
		p.refreshStatus()
	}
	n := len(p.prog)

	var usedOut, usedDeq, writtenRegs, writtenPreds uint64

	type regWrite struct {
		idx int
		val isa.Word
	}
	var regWrites []regWrite
	// Predicate writes commit as packed set/clear masks; conflict
	// detection guarantees the two are disjoint across issued
	// instructions, and validation forbids overlap within one.
	var predSet, predClr uint64
	halting := false

	fired := 0
	sawInputWait, sawOutputWait := false, false
	for k := 0; k < n && fired < p.issueWidth; k++ {
		idx := k
		if p.policy == SchedRoundRobin {
			idx = (k + p.rrOffset) % n
		}
		ci := &p.prog[idx]
		// Triggers evaluate against start-of-cycle predicate state:
		// predicate writes are deferred, so predBits is unchanged here.
		var r readiness
		if p.reference {
			r = p.classifyRef(ci)
		} else {
			r = p.classifyFast(ci)
		}
		switch r {
		case waitingInput:
			sawInputWait = true
			continue
		case waitingOut:
			sawOutputWait = true
			continue
		case notTriggered:
			continue
		}
		// Structural conflicts with already-issued instructions.
		if ci.outMask&usedOut != 0 || ci.deqMask&usedDeq != 0 ||
			ci.regWMask&writtenRegs != 0 || ci.prWMask&writtenPreds != 0 {
			continue
		}

		// Fire with deferred architectural writes. Channel effects
		// stage immediately (the channel layer is already two-phase).
		inst := &ci.inst
		var a, b isa.Word
		if inst.Op.Arity() >= 1 {
			a = p.readSrc(inst.Srcs[0])
		}
		if inst.Op.Arity() >= 2 {
			b = p.readSrc(inst.Srcs[1])
		}
		result := inst.Op.Eval(a, b)
		for _, r := range ci.regDsts {
			regWrites = append(regWrites, regWrite{r, result})
		}
		for _, d := range ci.outDsts {
			p.out[d.ch].Send(channel.Token{Data: result, Tag: d.tag})
		}
		if result != 0 {
			predSet |= ci.prDstMask
		} else {
			predClr |= ci.prDstMask
		}
		for _, ch := range inst.Deq {
			p.in[ch].Deq()
		}
		predSet |= ci.prUpdSet
		predClr |= ci.prUpdClr
		usedOut |= ci.outMask
		usedDeq |= ci.deqMask
		writtenRegs |= ci.regWMask
		writtenPreds |= ci.prWMask
		if inst.Op == isa.OpHalt {
			halting = true
		}
		p.stats.Fired++
		p.stats.PerInst[idx]++
		if p.Trace != nil {
			p.Trace(cycle, idx, result)
		}
		fired++
		if p.policy == SchedRoundRobin {
			p.rrOffset = (idx + 1) % n
		}
	}

	// Commit architectural state.
	for _, w := range regWrites {
		p.regs[w.idx] = w.val
	}
	p.predBits = p.predBits&^predClr | predSet
	if halting {
		p.halted = true
	}

	if fired > 0 {
		return true
	}
	switch {
	case sawOutputWait:
		p.stats.OutputStall++
		p.lastStall = stallOutput
	case sawInputWait:
		p.stats.InputStall++
		p.lastStall = stallInput
	default:
		p.stats.IdleCycles++
		p.lastStall = stallIdle
	}
	return false
}
