package pe

import (
	"tia/internal/channel"
	"tia/internal/isa"
)

// stepWide is the superscalar trigger scheduler: fire up to issueWidth
// ready, non-conflicting instructions in one cycle with parallel
// semantics (see SetIssueWidth).
func (p *PE) stepWide(cycle int64) bool {
	p.stats.Cycles++
	n := len(p.prog)

	usedOut := map[int]bool{}
	usedDeq := map[int]bool{}
	writtenRegs := map[int]bool{}
	writtenPreds := map[int]bool{}

	type regWrite struct {
		idx int
		val isa.Word
	}
	type predWrite struct {
		idx int
		val bool
	}
	var regWrites []regWrite
	var predWrites []predWrite
	halting := false

	fired := 0
	sawInputWait, sawOutputWait := false, false
	for k := 0; k < n && fired < p.issueWidth; k++ {
		idx := k
		if p.policy == SchedRoundRobin {
			idx = (k + p.rrOffset) % n
		}
		ci := &p.prog[idx]
		// Triggers evaluate against start-of-cycle predicate state:
		// predicate writes are deferred, so p.preds is unchanged here.
		switch p.classify(ci) {
		case waitingInput:
			sawInputWait = true
			continue
		case waitingOut:
			sawOutputWait = true
			continue
		case notTriggered:
			continue
		}
		// Structural conflicts with already-issued instructions.
		conflict := false
		for _, ch := range ci.outputs {
			if usedOut[ch] {
				conflict = true
			}
		}
		for _, ch := range ci.inst.Deq {
			if usedDeq[ch] {
				conflict = true
			}
		}
		for _, d := range ci.inst.Dsts {
			switch d.Kind {
			case isa.DstReg:
				if writtenRegs[d.Index] {
					conflict = true
				}
			case isa.DstPred:
				if writtenPreds[d.Index] {
					conflict = true
				}
			}
		}
		for _, u := range ci.inst.PredUpdates {
			if writtenPreds[u.Index] {
				conflict = true
			}
		}
		if conflict {
			continue
		}

		// Fire with deferred architectural writes. Channel effects
		// stage immediately (the channel layer is already two-phase).
		inst := &ci.inst
		var a, b isa.Word
		if inst.Op.Arity() >= 1 {
			a = p.readSrc(inst.Srcs[0])
		}
		if inst.Op.Arity() >= 2 {
			b = p.readSrc(inst.Srcs[1])
		}
		result := inst.Op.Eval(a, b)
		for _, d := range inst.Dsts {
			switch d.Kind {
			case isa.DstReg:
				regWrites = append(regWrites, regWrite{d.Index, result})
				writtenRegs[d.Index] = true
			case isa.DstOut:
				p.out[d.Index].Send(channel.Token{Data: result, Tag: d.Tag})
				usedOut[d.Index] = true
			case isa.DstPred:
				predWrites = append(predWrites, predWrite{d.Index, result != 0})
				writtenPreds[d.Index] = true
			}
		}
		for _, ch := range inst.Deq {
			p.in[ch].Deq()
			usedDeq[ch] = true
		}
		for _, u := range inst.PredUpdates {
			predWrites = append(predWrites, predWrite{u.Index, u.Op == isa.PredSet})
			writtenPreds[u.Index] = true
		}
		if inst.Op == isa.OpHalt {
			halting = true
		}
		p.stats.Fired++
		p.stats.PerInst[idx]++
		if p.Trace != nil {
			p.Trace(cycle, idx, result)
		}
		fired++
		if p.policy == SchedRoundRobin {
			p.rrOffset = (idx + 1) % n
		}
	}

	// Commit architectural state.
	for _, w := range regWrites {
		p.regs[w.idx] = w.val
	}
	for _, w := range predWrites {
		p.preds[w.idx] = w.val
	}
	if halting {
		p.halted = true
	}

	if fired > 0 {
		return true
	}
	switch {
	case sawOutputWait:
		p.stats.OutputStall++
	case sawInputWait:
		p.stats.InputStall++
	default:
		p.stats.IdleCycles++
	}
	return false
}
