package pe

import (
	"strings"
	"testing"

	"tia/internal/channel"
	"tia/internal/isa"
)

// harness builds a PE with nIn/nOut connected channels and steps it with
// channel ticks, mimicking a one-PE fabric.
type harness struct {
	pe    *PE
	in    []*channel.Channel
	out   []*channel.Channel
	cycle int64
}

func newHarness(t *testing.T, prog []isa.Instruction, nIn, nOut int) *harness {
	t.Helper()
	cfg := isa.DefaultConfig()
	p, err := New("test", cfg, prog)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := &harness{pe: p}
	for i := 0; i < nIn; i++ {
		ch := channel.New("in", 4, 0)
		p.ConnectIn(i, ch)
		h.in = append(h.in, ch)
	}
	for i := 0; i < nOut; i++ {
		ch := channel.New("out", 4, 0)
		p.ConnectOut(i, ch)
		h.out = append(h.out, ch)
	}
	return h
}

func (h *harness) step() bool {
	fired := h.pe.Step(h.cycle)
	for _, c := range h.in {
		c.Tick()
	}
	for _, c := range h.out {
		c.Tick()
	}
	h.cycle++
	return fired
}

func (h *harness) feed(ch int, toks ...channel.Token) {
	for _, tok := range toks {
		h.in[ch].Send(tok)
	}
}

func (h *harness) drain(ch int) []channel.Token {
	var out []channel.Token
	for {
		tok, ok := h.out[ch].Peek()
		if !ok {
			break
		}
		out = append(out, tok)
		h.out[ch].Deq()
		h.out[ch].Tick()
	}
	return out
}

func TestFireSimpleAdd(t *testing.T) {
	prog := []isa.Instruction{{
		Label:   "addup",
		Trigger: isa.When(nil, []isa.InputCond{isa.InReady(0), isa.InReady(1)}),
		Op:      isa.OpAdd,
		Srcs:    [2]isa.Src{isa.In(0), isa.In(1)},
		Dsts:    []isa.Dst{isa.DOut(0, isa.TagData)},
		Deq:     []int{0, 1},
	}}
	h := newHarness(t, prog, 2, 1)
	h.feed(0, channel.Data(3))
	h.feed(1, channel.Data(4))
	h.step() // tokens become visible
	if h.pe.Stats().Fired != 0 {
		t.Fatal("fired before inputs were visible")
	}
	if !h.step() {
		t.Fatal("did not fire with both inputs ready")
	}
	h.step()
	got := h.drain(0)
	if len(got) != 1 || got[0].Data != 7 {
		t.Fatalf("output = %v, want [7]", got)
	}
}

func TestPredicateGating(t *testing.T) {
	prog := []isa.Instruction{
		{
			Label:   "whenP0",
			Trigger: isa.When([]isa.PredLit{isa.P(0)}, nil),
			Op:      isa.OpMov,
			Srcs:    [2]isa.Src{isa.Imm(1), {}},
			Dsts:    []isa.Dst{isa.DReg(0)},
			PredUpdates: []isa.PredUpdate{
				isa.ClrP(0),
			},
		},
	}
	h := newHarness(t, prog, 0, 0)
	if h.step() {
		t.Fatal("fired with predicate false")
	}
	h.pe.SetPred(0, true)
	if !h.step() {
		t.Fatal("did not fire with predicate true")
	}
	if h.pe.Pred(0) {
		t.Fatal("explicit clr did not clear predicate")
	}
	if h.step() {
		t.Fatal("fired again after predicate cleared")
	}
	if h.pe.Reg(0) != 1 {
		t.Fatalf("r0 = %d, want 1", h.pe.Reg(0))
	}
}

func TestTagMatching(t *testing.T) {
	prog := []isa.Instruction{
		{
			Label:   "onData",
			Trigger: isa.When(nil, []isa.InputCond{isa.InTagEq(0, isa.TagData)}),
			Op:      isa.OpMov,
			Srcs:    [2]isa.Src{isa.In(0), {}},
			Dsts:    []isa.Dst{isa.DOut(0, isa.TagData)},
			Deq:     []int{0},
		},
		{
			Label:   "onEOD",
			Trigger: isa.When(nil, []isa.InputCond{isa.InTagEq(0, isa.TagEOD)}),
			Op:      isa.OpHalt,
			Deq:     []int{0},
		},
	}
	h := newHarness(t, prog, 1, 1)
	h.feed(0, channel.Data(5), channel.EOD())
	for i := 0; i < 10 && !h.pe.Done(); i++ {
		h.step()
	}
	if !h.pe.Done() {
		t.Fatal("PE did not halt on EOD")
	}
	got := h.drain(0)
	if len(got) != 1 || got[0].Data != 5 {
		t.Fatalf("output = %v, want [5]", got)
	}
	s := h.pe.Stats()
	if s.PerInst[0] != 1 || s.PerInst[1] != 1 {
		t.Fatalf("per-inst fires = %v, want [1 1]", s.PerInst)
	}
}

func TestTagNeCondition(t *testing.T) {
	prog := []isa.Instruction{{
		Label:   "notEOD",
		Trigger: isa.When(nil, []isa.InputCond{isa.InTagNe(0, isa.TagEOD)}),
		Op:      isa.OpMov,
		Srcs:    [2]isa.Src{isa.In(0), {}},
		Dsts:    []isa.Dst{isa.DReg(0)},
		Deq:     []int{0},
	}}
	h := newHarness(t, prog, 1, 0)
	h.feed(0, channel.EOD())
	h.step()
	if h.step() {
		t.Fatal("fired on EOD token despite tag!=EOD condition")
	}
}

func TestOutputBackpressure(t *testing.T) {
	prog := []isa.Instruction{{
		Label: "spam",
		Op:    isa.OpMov,
		Srcs:  [2]isa.Src{isa.Imm(9), {}},
		Dsts:  []isa.Dst{isa.DOut(0, isa.TagData)},
	}}
	cfg := isa.DefaultConfig()
	p, err := New("bp", cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	out := channel.New("out", 2, 0)
	p.ConnectOut(0, out)
	for i := int64(0); i < 10; i++ {
		p.Step(i)
		out.Tick()
	}
	s := p.Stats()
	if s.Fired != 2 {
		t.Fatalf("fired %d times into capacity-2 channel with no consumer, want 2", s.Fired)
	}
	if s.OutputStall != 8 {
		t.Fatalf("OutputStall = %d, want 8", s.OutputStall)
	}
}

func TestFlagDerivedPredicate(t *testing.T) {
	// leu p0, in0, in1  — the merge kernel's comparison idiom.
	prog := []isa.Instruction{{
		Label:   "cmp",
		Trigger: isa.When([]isa.PredLit{isa.NotP(1)}, []isa.InputCond{isa.InReady(0), isa.InReady(1)}),
		Op:      isa.OpLEU,
		Srcs:    [2]isa.Src{isa.In(0), isa.In(1)},
		Dsts:    []isa.Dst{isa.DPred(0)},
		PredUpdates: []isa.PredUpdate{
			isa.SetP(1),
		},
	}}
	h := newHarness(t, prog, 2, 0)
	h.feed(0, channel.Data(3))
	h.feed(1, channel.Data(5))
	h.step()
	h.step()
	if !h.pe.Pred(0) {
		t.Fatal("3 <= 5 should set p0")
	}
	if !h.pe.Pred(1) {
		t.Fatal("explicit set p1 missing")
	}
}

func TestSrcInTag(t *testing.T) {
	prog := []isa.Instruction{{
		Label:   "tagval",
		Trigger: isa.When(nil, []isa.InputCond{isa.InReady(0)}),
		Op:      isa.OpMov,
		Srcs:    [2]isa.Src{isa.InTag(0), {}},
		Dsts:    []isa.Dst{isa.DReg(2)},
		Deq:     []int{0},
	}}
	h := newHarness(t, prog, 1, 0)
	h.feed(0, channel.Token{Data: 99, Tag: 3})
	h.step()
	h.step()
	if h.pe.Reg(2) != 3 {
		t.Fatalf("r2 = %d, want tag 3", h.pe.Reg(2))
	}
}

func TestPriorityOrder(t *testing.T) {
	// Two always-ready instructions; priority must fire the first only.
	prog := []isa.Instruction{
		{Label: "hi", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(1), {}}, Dsts: []isa.Dst{isa.DReg(0)}},
		{Label: "lo", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(2), {}}, Dsts: []isa.Dst{isa.DReg(1)}},
	}
	h := newHarness(t, prog, 0, 0)
	for i := 0; i < 4; i++ {
		h.step()
	}
	s := h.pe.Stats()
	if s.PerInst[0] != 4 || s.PerInst[1] != 0 {
		t.Fatalf("priority fires = %v, want [4 0]", s.PerInst)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	prog := []isa.Instruction{
		{Label: "a", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(1), {}}, Dsts: []isa.Dst{isa.DReg(0)}},
		{Label: "b", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(2), {}}, Dsts: []isa.Dst{isa.DReg(1)}},
	}
	h := newHarness(t, prog, 0, 0)
	h.pe.SetPolicy(SchedRoundRobin)
	for i := 0; i < 8; i++ {
		h.step()
	}
	s := h.pe.Stats()
	if s.PerInst[0] != 4 || s.PerInst[1] != 4 {
		t.Fatalf("round-robin fires = %v, want [4 4]", s.PerInst)
	}
}

func TestStallClassification(t *testing.T) {
	prog := []isa.Instruction{{
		Label:   "needsInput",
		Trigger: isa.When([]isa.PredLit{isa.P(0)}, []isa.InputCond{isa.InReady(0)}),
		Op:      isa.OpMov,
		Srcs:    [2]isa.Src{isa.In(0), {}},
		Dsts:    []isa.Dst{isa.DReg(0)},
		Deq:     []int{0},
	}}
	h := newHarness(t, prog, 1, 0)
	// Predicate false: idle, not input stall.
	h.step()
	if s := h.pe.Stats(); s.IdleCycles != 1 || s.InputStall != 0 {
		t.Fatalf("want idle cycle, got %+v", s)
	}
	h.pe.SetPred(0, true)
	h.step()
	if s := h.pe.Stats(); s.InputStall != 1 {
		t.Fatalf("want input stall, got %+v", s)
	}
}

func TestHaltStopsStepping(t *testing.T) {
	prog := []isa.Instruction{{Label: "die", Op: isa.OpHalt}}
	h := newHarness(t, prog, 0, 0)
	h.step()
	if !h.pe.Done() {
		t.Fatal("halt did not mark done")
	}
	cycles := h.pe.Stats().Cycles
	h.step()
	if h.pe.Stats().Cycles != cycles {
		t.Fatal("stepped after halt")
	}
}

func TestReset(t *testing.T) {
	prog := []isa.Instruction{{
		Label: "inc",
		Op:    isa.OpAdd,
		Srcs:  [2]isa.Src{isa.Reg(0), isa.Imm(1)},
		Dsts:  []isa.Dst{isa.DReg(0)},
	}}
	h := newHarness(t, prog, 0, 0)
	h.pe.SetReg(0, 10)
	h.pe.SetPred(3, true)
	h.step()
	h.step()
	if h.pe.Reg(0) != 12 {
		t.Fatalf("r0 = %d, want 12", h.pe.Reg(0))
	}
	h.pe.Reset()
	if h.pe.Reg(0) != 10 || !h.pe.Pred(3) {
		t.Fatal("Reset did not restore initial state")
	}
	if h.pe.Stats().Fired != 0 {
		t.Fatal("Reset did not zero stats")
	}
}

func TestCheckConnections(t *testing.T) {
	prog := []isa.Instruction{{
		Label:   "x",
		Trigger: isa.When(nil, []isa.InputCond{isa.InReady(0)}),
		Op:      isa.OpMov,
		Srcs:    [2]isa.Src{isa.In(0), {}},
		Dsts:    []isa.Dst{isa.DOut(1, 0)},
		Deq:     []int{0},
	}}
	p, err := New("conn", isa.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConnections(); err == nil {
		t.Fatal("unconnected input accepted")
	}
	p.ConnectIn(0, channel.New("i", 2, 0))
	if err := p.CheckConnections(); err == nil {
		t.Fatal("unconnected output accepted")
	}
	p.ConnectOut(1, channel.New("o", 2, 0))
	if err := p.CheckConnections(); err != nil {
		t.Fatalf("fully connected PE rejected: %v", err)
	}
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	bad := []isa.Instruction{{Op: isa.OpAdd}} // missing sources
	if _, err := New("bad", isa.DefaultConfig(), bad); err == nil {
		t.Fatal("invalid program accepted")
	}
}

// TestMergeKernel runs the paper's running example — merging two sorted
// streams — on a single PE, checking the merged output and that the
// per-element dynamic instruction count is 2 (compare + send).
func TestMergeKernel(t *testing.T) {
	prog := MergeProgram()
	cfg := isa.DefaultConfig()
	p, err := New("merge", cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	a := channel.New("a", 4, 0)
	b := channel.New("b", 4, 0)
	o := channel.New("o", 4, 0)
	p.ConnectIn(0, a)
	p.ConnectIn(1, b)
	p.ConnectOut(0, o)
	if err := p.CheckConnections(); err != nil {
		t.Fatal(err)
	}

	left := []isa.Word{1, 3, 5, 7}
	right := []isa.Word{2, 4, 6, 8}
	li, ri := 0, 0
	var got []isa.Word
	eodSeen := false
	for cyc := int64(0); cyc < 500 && !eodSeen; cyc++ {
		if li < len(left) && a.CanAccept() {
			a.Send(channel.Data(left[li]))
			li++
		} else if li == len(left) && a.CanAccept() {
			a.Send(channel.EOD())
			li++
		}
		if ri < len(right) && b.CanAccept() {
			b.Send(channel.Data(right[ri]))
			ri++
		} else if ri == len(right) && b.CanAccept() {
			b.Send(channel.EOD())
			ri++
		}
		p.Step(cyc)
		if tok, ok := o.Peek(); ok {
			if tok.Tag == isa.TagEOD {
				eodSeen = true
			} else {
				got = append(got, tok.Data)
			}
			o.Deq()
		}
		a.Tick()
		b.Tick()
		o.Tick()
	}
	if !eodSeen {
		t.Fatal("merge never emitted EOD")
	}
	want := []isa.Word{1, 2, 3, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
}

// TestIssueWidthParallelSemantics: two independent always-ready
// instructions fire in one cycle at width 2; a register swap expressed as
// two parallel movs must read start-of-cycle values.
func TestIssueWidthParallelSemantics(t *testing.T) {
	prog := []isa.Instruction{
		{Label: "x2y", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Reg(0), {}}, Dsts: []isa.Dst{isa.DReg(1)}},
		{Label: "y2x", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Reg(1), {}}, Dsts: []isa.Dst{isa.DReg(0)}},
	}
	p, err := New("swap", isa.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	p.SetIssueWidth(2)
	p.SetReg(0, 7)
	p.SetReg(1, 9)
	p.Step(0)
	if p.Reg(0) != 9 || p.Reg(1) != 7 {
		t.Fatalf("parallel swap gave r0=%d r1=%d, want 9 7", p.Reg(0), p.Reg(1))
	}
	if p.Stats().Fired != 2 {
		t.Fatalf("fired %d in one cycle, want 2", p.Stats().Fired)
	}
}

// TestIssueWidthConflicts: instructions writing the same register or
// output cannot dual-issue.
func TestIssueWidthConflicts(t *testing.T) {
	prog := []isa.Instruction{
		{Label: "a", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(1), {}}, Dsts: []isa.Dst{isa.DReg(0)}},
		{Label: "b", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(2), {}}, Dsts: []isa.Dst{isa.DReg(0)}},
	}
	p, err := New("waw", isa.DefaultConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	p.SetIssueWidth(4)
	p.Step(0)
	if p.Stats().Fired != 1 {
		t.Fatalf("WAW pair dual-issued: fired=%d", p.Stats().Fired)
	}
	if p.Reg(0) != 1 {
		t.Fatalf("priority winner should write: r0=%d", p.Reg(0))
	}

	outConflict := []isa.Instruction{
		{Label: "a", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(1), {}}, Dsts: []isa.Dst{isa.DOut(0, 0)}},
		{Label: "b", Op: isa.OpMov, Srcs: [2]isa.Src{isa.Imm(2), {}}, Dsts: []isa.Dst{isa.DOut(0, 0)}},
	}
	p2, err := New("oconf", isa.DefaultConfig(), outConflict)
	if err != nil {
		t.Fatal(err)
	}
	p2.SetIssueWidth(2)
	out := channel.New("o", 4, 0)
	p2.ConnectOut(0, out)
	p2.Step(0)
	out.Tick()
	if p2.Stats().Fired != 1 || out.Len() != 1 {
		t.Fatalf("output conflict dual-issued: fired=%d len=%d", p2.Stats().Fired, out.Len())
	}
}

// TestIssueWidthSpeedsUpMerge: the merge kernel's compare and send can
// overlap at width 2 only when independent; at minimum the wide scheduler
// must not change results.
func TestIssueWidthMergeEquivalence(t *testing.T) {
	run := func(width int) ([]isa.Word, int64) {
		p, err := New("m", isa.DefaultConfig(), MergeProgram())
		if err != nil {
			t.Fatal(err)
		}
		p.SetIssueWidth(width)
		a := channel.New("a", 4, 0)
		b := channel.New("b", 4, 0)
		o := channel.New("o", 4, 0)
		p.ConnectIn(0, a)
		p.ConnectIn(1, b)
		p.ConnectOut(0, o)
		left := []isa.Word{1, 4, 9, 16, 25}
		right := []isa.Word{2, 3, 10, 20}
		li, ri := 0, 0
		var got []isa.Word
		var cycles int64
		for cyc := int64(0); cyc < 1000; cyc++ {
			if li <= len(left) && a.CanAccept() {
				if li < len(left) {
					a.Send(channel.Data(left[li]))
				} else {
					a.Send(channel.EOD())
				}
				li++
			}
			if ri <= len(right) && b.CanAccept() {
				if ri < len(right) {
					b.Send(channel.Data(right[ri]))
				} else {
					b.Send(channel.EOD())
				}
				ri++
			}
			p.Step(cyc)
			if tok, ok := o.Peek(); ok {
				if tok.Tag == isa.TagEOD {
					cycles = cyc
					break
				}
				got = append(got, tok.Data)
				o.Deq()
			}
			a.Tick()
			b.Tick()
			o.Tick()
		}
		return got, cycles
	}
	got1, cyc1 := run(1)
	got2, cyc2 := run(2)
	if len(got1) != len(got2) {
		t.Fatalf("width changed results: %v vs %v", got1, got2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("width changed results: %v vs %v", got1, got2)
		}
	}
	if cyc2 > cyc1 {
		t.Errorf("width 2 slower (%d) than width 1 (%d)", cyc2, cyc1)
	}
}

func TestAccessorsAndDumpState(t *testing.T) {
	p, err := New("acc", isa.DefaultConfig(), MergeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "acc" || p.Config().NumRegs != 8 {
		t.Fatal("accessors wrong")
	}
	if len(p.Program()) != p.StaticInstructions() {
		t.Fatal("program/static mismatch")
	}
	if p.DynamicInstructions() != 0 {
		t.Fatal("fresh PE fired")
	}
	if SchedPriority.String() != "priority" || SchedRoundRobin.String() != "round-robin" {
		t.Fatal("policy names")
	}
	s := p.DumpState()
	for _, frag := range []string{"acc:", "regs[", "preds[", "unconnected"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DumpState %q missing %q", s, frag)
		}
	}
	// Halted state renders too.
	hp, err := New("h", isa.DefaultConfig(), []isa.Instruction{{Label: "die", Op: isa.OpHalt}})
	if err != nil {
		t.Fatal(err)
	}
	hp.Step(0)
	if !strings.Contains(hp.DumpState(), "halted") {
		t.Errorf("halted DumpState: %q", hp.DumpState())
	}
	// Unlabeled instruction renders by index.
	up, err := New("u", isa.DefaultConfig(), []isa.Instruction{{
		Trigger: isa.When(nil, []isa.InputCond{isa.InReady(0)}),
		Op:      isa.OpNop, Deq: []int{0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	up.ConnectIn(0, channel.New("in", 2, 0))
	if !strings.Contains(up.DumpState(), "#0:awaiting-input") {
		t.Errorf("unlabeled DumpState: %q", up.DumpState())
	}
	// A PE whose only rule is predicate-gated reports no armed trigger.
	gp, err := New("g", isa.DefaultConfig(), []isa.Instruction{{
		Label:   "gated",
		Trigger: isa.When([]isa.PredLit{isa.P(0)}, nil),
		Op:      isa.OpNop,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gp.DumpState(), "no-trigger-armed") {
		t.Errorf("gated DumpState: %q", gp.DumpState())
	}
}

func TestConnectPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p, err := New("p", isa.DefaultConfig(), MergeProgram())
	if err != nil {
		t.Fatal(err)
	}
	expectPanic("in range", func() { p.ConnectIn(99, channel.New("x", 1, 0)) })
	expectPanic("out range", func() { p.ConnectOut(99, channel.New("x", 1, 0)) })
	p.ConnectIn(0, channel.New("a", 1, 0))
	expectPanic("in twice", func() { p.ConnectIn(0, channel.New("b", 1, 0)) })
	p.ConnectOut(0, channel.New("o", 1, 0))
	expectPanic("out twice", func() { p.ConnectOut(0, channel.New("o2", 1, 0)) })
	p.SetIssueWidth(0) // clamps to 1; stepping requires full connection
	if err := p.CheckConnections(); err == nil {
		t.Fatal("partially connected PE accepted")
	}
}
