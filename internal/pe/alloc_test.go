package pe

// Allocation gates for the trigger-resolution and step hot paths: once
// constructed, a PE must never allocate while classifying or stepping,
// and Reset must reuse the per-instruction statistics buffer instead of
// regrowing it (see internal/fabric/alloc_test.go for the fabric-level
// gates these feed).

import (
	"testing"

	"tia/internal/channel"
)

// TestClassifyAllocationFree gates both classifier implementations.
func TestClassifyAllocationFree(t *testing.T) {
	p, a, bb, _ := benchMergeSetup(t)
	a.Send(channel.Data(1))
	bb.Send(channel.Data(2))
	a.Tick()
	bb.Tick()
	for _, reference := range []bool{false, true} {
		avg := testing.AllocsPerRun(100, func() {
			p.ClassifyAll(reference)
		})
		if avg != 0 {
			t.Errorf("ClassifyAll(reference=%v) allocates %.1f times per run, want 0", reference, avg)
		}
	}
}

// TestStepResetAllocationFree gates the steady-state step loop and the
// Reset path (PerInst must be zeroed in place, not re-made).
func TestStepResetAllocationFree(t *testing.T) {
	p, a, bb, o := benchMergeSetup(t)
	step := func() {
		var cyc int64
		for cyc = 0; cyc < 64; cyc++ {
			if a.CanAccept() {
				a.Send(channel.Data(1))
			}
			if bb.CanAccept() {
				bb.Send(channel.Data(2))
			}
			p.Step(cyc)
			if _, ok := o.Peek(); ok {
				o.Deq()
			}
			a.Tick()
			bb.Tick()
			o.Tick()
		}
	}
	step() // warm
	avg := testing.AllocsPerRun(20, func() {
		p.Reset()
		a.Reset()
		bb.Reset()
		o.Reset()
		step()
	})
	if avg != 0 {
		t.Errorf("steady-state Reset+step loop allocates %.1f times per run, want 0", avg)
	}
}
