package pe

import (
	"testing"

	"tia/internal/channel"
	"tia/internal/isa"
)

// benchMergeSetup wires the merge kernel with pre-fed channels (shared
// with the allocation gates in alloc_test.go).
func benchMergeSetup(b testing.TB) (*PE, *channel.Channel, *channel.Channel, *channel.Channel) {
	b.Helper()
	p, err := New("m", isa.DefaultConfig(), MergeProgram())
	if err != nil {
		b.Fatal(err)
	}
	a := channel.New("a", 4, 0)
	bb := channel.New("b", 4, 0)
	o := channel.New("o", 4, 0)
	p.ConnectIn(0, a)
	p.ConnectIn(1, bb)
	p.ConnectOut(0, o)
	return p, a, bb, o
}

// BenchmarkSchedulerStep measures the single-issue scheduler on the merge
// kernel in steady state.
func BenchmarkSchedulerStep(b *testing.B) {
	p, a, bb, o := benchMergeSetup(b)
	v := isa.Word(0)
	for i := 0; i < b.N; i++ {
		if a.CanAccept() {
			a.Send(channel.Data(v))
			v++
		}
		if bb.CanAccept() {
			bb.Send(channel.Data(v))
			v++
		}
		p.Step(int64(i))
		if _, ok := o.Peek(); ok {
			o.Deq()
		}
		a.Tick()
		bb.Tick()
		o.Tick()
	}
}

// BenchmarkClassify measures raw trigger resolution — one full scan of
// the merge program's triggers against fixed channel state — for the
// compiled bitmask scheduler versus the slice-walking reference.
func BenchmarkClassify(b *testing.B) {
	for _, mode := range []struct {
		name      string
		reference bool
	}{{"bitmask", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p, a, bb, o := benchMergeSetup(b)
			p.SetReferenceScheduler(mode.reference)
			a.Send(channel.Data(1))
			bb.Send(channel.Data(2))
			a.Tick()
			bb.Tick()
			_ = o
			p.refreshStatus()
			b.ResetTimer()
			sum := 0
			for i := 0; i < b.N; i++ {
				for k := range p.prog {
					ci := &p.prog[k]
					if mode.reference {
						sum += int(p.classifyRef(ci))
					} else {
						sum += int(p.classifyFast(ci))
					}
				}
			}
			if sum < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkSchedulerStepWide measures the width-2 scheduler on the same
// kernel.
func BenchmarkSchedulerStepWide(b *testing.B) {
	p, a, bb, o := benchMergeSetup(b)
	p.SetIssueWidth(2)
	v := isa.Word(0)
	for i := 0; i < b.N; i++ {
		if a.CanAccept() {
			a.Send(channel.Data(v))
			v++
		}
		if bb.CanAccept() {
			bb.Send(channel.Data(v))
			v++
		}
		p.Step(int64(i))
		if _, ok := o.Peek(); ok {
			o.Deq()
		}
		a.Tick()
		bb.Tick()
		o.Tick()
	}
}
