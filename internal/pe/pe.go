// Package pe implements the triggered-instruction processing element: a
// small datapath (registers, predicates, one ALU) whose control is a
// hardware scheduler firing guarded instructions, with no program counter.
//
// Each cycle the scheduler evaluates every instruction's trigger against
// the predicate file and the status/tags of the input channels, checks
// that every channel the instruction reads is non-empty and every output
// channel it writes has space, and fires the highest-priority ready
// instruction (program order by default). Firing performs one ALU
// operation, routes the result to registers, output channels and/or a
// predicate, dequeues input channels, and applies explicit predicate
// set/clear side effects — all in one cycle.
package pe

import (
	"fmt"
	"strings"

	"tia/internal/channel"
	"tia/internal/isa"
)

// SchedPolicy selects how the scheduler breaks ties among ready
// instructions. The paper's hardware uses a fixed priority encoder;
// round-robin is provided as an ablation.
type SchedPolicy uint8

const (
	// SchedPriority fires the first ready instruction in program order.
	SchedPriority SchedPolicy = iota
	// SchedRoundRobin rotates priority one slot after every fire.
	SchedRoundRobin
)

func (p SchedPolicy) String() string {
	if p == SchedRoundRobin {
		return "round-robin"
	}
	return "priority"
}

// Stats aggregates a PE's per-cycle outcomes.
type Stats struct {
	Fired       int64 // cycles an instruction fired
	IdleCycles  int64 // cycles with no trigger satisfied
	InputStall  int64 // cycles a trigger matched predicates but waited on input data
	OutputStall int64 // cycles a trigger was ready except for output backpressure
	Cycles      int64 // cycles stepped before halting
	PerInst     []int64
}

// compiled caches per-instruction derived readiness sets.
type compiled struct {
	inst    isa.Instruction
	inputs  []int // channels that must be non-empty
	outputs []int // channels that must have space
}

// PE is one triggered-instruction processing element.
type PE struct {
	name string
	cfg  isa.Config
	prog []compiled

	regs   []isa.Word
	preds  []bool
	halted bool

	in  []*channel.Channel
	out []*channel.Channel

	policy     SchedPolicy
	rrOffset   int
	issueWidth int // max instructions fired per cycle (default 1)

	stats Stats

	// initial state, kept for Reset
	initRegs  []isa.Word
	initPreds []bool

	// Trace, when non-nil, is called once per fire with the cycle, the
	// instruction index, and the ALU result.
	Trace func(cycle int64, instIdx int, result isa.Word)
}

// New compiles a program into a PE. The program is validated against cfg.
func New(name string, cfg isa.Config, prog []isa.Instruction) (*PE, error) {
	if err := cfg.ValidateProgram(prog); err != nil {
		return nil, fmt.Errorf("pe %s: %w", name, err)
	}
	p := &PE{
		name:      name,
		cfg:       cfg,
		regs:      make([]isa.Word, cfg.NumRegs),
		preds:     make([]bool, cfg.NumPreds),
		in:        make([]*channel.Channel, cfg.NumIn),
		out:       make([]*channel.Channel, cfg.NumOut),
		initRegs:  make([]isa.Word, cfg.NumRegs),
		initPreds: make([]bool, cfg.NumPreds),
	}
	p.stats.PerInst = make([]int64, len(prog))
	for i := range prog {
		inst := prog[i]
		p.prog = append(p.prog, compiled{
			inst:    inst,
			inputs:  inst.ImplicitInputs(),
			outputs: inst.OutputChannels(),
		})
	}
	return p, nil
}

// Name returns the PE's fabric name.
func (p *PE) Name() string { return p.name }

// Config returns the PE's architectural configuration.
func (p *PE) Config() isa.Config { return p.cfg }

// Program returns the compiled program's instructions (static view).
func (p *PE) Program() []isa.Instruction {
	out := make([]isa.Instruction, len(p.prog))
	for i := range p.prog {
		out[i] = p.prog[i].inst
	}
	return out
}

// StaticInstructions returns the static program size.
func (p *PE) StaticInstructions() int { return len(p.prog) }

// SetPolicy selects the scheduler tie-break policy.
func (p *PE) SetPolicy(pol SchedPolicy) { p.policy = pol }

// SetIssueWidth lets the scheduler fire up to w ready instructions per
// cycle — a superscalar trigger scheduler, one of the paper's natural
// extensions. Instructions fire with parallel semantics: triggers and
// operands are evaluated against start-of-cycle register/predicate state,
// register, predicate and halt effects commit at end of cycle, and two
// instructions conflict (lower priority skipped) if they write the same
// register or predicate, enqueue to the same output channel, or dequeue
// the same input channel.
func (p *PE) SetIssueWidth(w int) {
	if w < 1 {
		w = 1
	}
	p.issueWidth = w
}

// SetReg establishes an initial register value (also restored by Reset).
func (p *PE) SetReg(i int, v isa.Word) {
	p.regs[i] = v
	p.initRegs[i] = v
}

// SetPred establishes an initial predicate value (also restored by Reset).
func (p *PE) SetPred(i int, v bool) {
	p.preds[i] = v
	p.initPreds[i] = v
}

// Reg returns the current value of register i (for tests and debuggers).
func (p *PE) Reg(i int) isa.Word { return p.regs[i] }

// Pred returns the current value of predicate i.
func (p *PE) Pred(i int) bool { return p.preds[i] }

// ConnectIn attaches ch as input channel idx.
func (p *PE) ConnectIn(idx int, ch *channel.Channel) {
	if idx < 0 || idx >= len(p.in) {
		panic(fmt.Sprintf("pe %s: input index %d out of range", p.name, idx))
	}
	if p.in[idx] != nil {
		panic(fmt.Sprintf("pe %s: input %d connected twice", p.name, idx))
	}
	p.in[idx] = ch
}

// ConnectOut attaches ch as output channel idx.
func (p *PE) ConnectOut(idx int, ch *channel.Channel) {
	if idx < 0 || idx >= len(p.out) {
		panic(fmt.Sprintf("pe %s: output index %d out of range", p.name, idx))
	}
	if p.out[idx] != nil {
		panic(fmt.Sprintf("pe %s: output %d connected twice", p.name, idx))
	}
	p.out[idx] = ch
}

// CheckConnections verifies that every channel the program references is
// attached. The fabric calls this before simulation.
func (p *PE) CheckConnections() error {
	for _, ci := range p.prog {
		for _, ch := range ci.inputs {
			if p.in[ch] == nil {
				return fmt.Errorf("pe %s: %s uses unconnected input in%d", p.name, ci.inst.Label, ch)
			}
		}
		for _, ch := range ci.outputs {
			if p.out[ch] == nil {
				return fmt.Errorf("pe %s: %s uses unconnected output out%d", p.name, ci.inst.Label, ch)
			}
		}
	}
	return nil
}

// Done reports whether the PE has executed a halt instruction.
func (p *PE) Done() bool { return p.halted }

// Stats returns a snapshot of the PE's counters.
func (p *PE) Stats() Stats {
	s := p.stats
	s.PerInst = append([]int64(nil), p.stats.PerInst...)
	return s
}

// DynamicInstructions returns the total number of instructions fired.
func (p *PE) DynamicInstructions() int64 { return p.stats.Fired }

// DumpState renders the PE's architectural state on one line — the first
// thing to look at when a fabric deadlocks.
func (p *PE) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.name)
	if p.halted {
		b.WriteString(" halted")
	}
	b.WriteString(" regs[")
	for i, r := range p.regs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	b.WriteString("] preds[")
	for _, v := range p.preds {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString("]")
	// Which instruction is closest to firing?
	for i := range p.prog {
		if !p.connected(&p.prog[i]) {
			fmt.Fprintf(&b, " %s:unconnected", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		}
		switch p.classify(&p.prog[i]) {
		case waitingInput:
			fmt.Fprintf(&b, " %s:awaiting-input", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		case waitingOut:
			fmt.Fprintf(&b, " %s:awaiting-output", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		}
	}
	b.WriteString(" no-trigger-armed")
	return b.String()
}

// connected reports whether every channel the instruction references is
// attached (DumpState may run on partially built PEs).
func (p *PE) connected(ci *compiled) bool {
	for _, ch := range ci.inputs {
		if p.in[ch] == nil {
			return false
		}
	}
	for _, ch := range ci.outputs {
		if p.out[ch] == nil {
			return false
		}
	}
	return true
}

func labelOrIdx(in *isa.Instruction, i int) string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("#%d", i)
}

// Reset restores initial architectural state and zeroes statistics.
// Attached channels are not reset; the fabric owns them.
func (p *PE) Reset() {
	copy(p.regs, p.initRegs)
	copy(p.preds, p.initPreds)
	p.halted = false
	p.rrOffset = 0
	p.stats = Stats{PerInst: make([]int64, len(p.prog))}
}

// ready classifies an instruction's readiness this cycle.
type readiness uint8

const (
	notTriggered readiness = iota // predicate guard false
	waitingInput                  // predicates hold, some input empty or tag mismatch
	waitingOut                    // inputs ready, some output lacks space
	fireable
)

func (p *PE) classify(ci *compiled) readiness {
	for _, lit := range ci.inst.Trigger.Preds {
		if p.preds[lit.Index] != lit.Value {
			return notTriggered
		}
	}
	for _, ch := range ci.inputs {
		if _, ok := p.in[ch].Peek(); !ok {
			return waitingInput
		}
	}
	for _, cond := range ci.inst.Trigger.Inputs {
		tok, _ := p.in[cond.Chan].Peek()
		switch cond.Cond {
		case isa.TagEq:
			if tok.Tag != cond.Tag {
				return notTriggered
			}
		case isa.TagNe:
			if tok.Tag == cond.Tag {
				return notTriggered
			}
		}
	}
	for _, ch := range ci.outputs {
		if !p.out[ch].CanAccept() {
			return waitingOut
		}
	}
	return fireable
}

// Step executes one cycle: the scheduler picks a ready instruction and
// fires it (or up to the configured issue width). It returns true if an
// instruction fired.
func (p *PE) Step(cycle int64) bool {
	if p.halted {
		return false
	}
	if p.issueWidth > 1 {
		return p.stepWide(cycle)
	}
	p.stats.Cycles++
	n := len(p.prog)
	sawInputWait, sawOutputWait := false, false
	for k := 0; k < n; k++ {
		idx := k
		if p.policy == SchedRoundRobin {
			idx = (k + p.rrOffset) % n
		}
		switch p.classify(&p.prog[idx]) {
		case fireable:
			p.fire(cycle, idx)
			if p.policy == SchedRoundRobin {
				p.rrOffset = (idx + 1) % n
			}
			return true
		case waitingInput:
			sawInputWait = true
		case waitingOut:
			sawOutputWait = true
		}
	}
	switch {
	case sawOutputWait:
		p.stats.OutputStall++
	case sawInputWait:
		p.stats.InputStall++
	default:
		p.stats.IdleCycles++
	}
	return false
}

func (p *PE) fire(cycle int64, idx int) {
	ci := &p.prog[idx]
	inst := &ci.inst
	var a, b isa.Word
	if inst.Op.Arity() >= 1 {
		a = p.readSrc(inst.Srcs[0])
	}
	if inst.Op.Arity() >= 2 {
		b = p.readSrc(inst.Srcs[1])
	}
	result := inst.Op.Eval(a, b)
	for _, d := range inst.Dsts {
		switch d.Kind {
		case isa.DstReg:
			p.regs[d.Index] = result
		case isa.DstOut:
			p.out[d.Index].Send(channel.Token{Data: result, Tag: d.Tag})
		case isa.DstPred:
			p.preds[d.Index] = result != 0
		}
	}
	for _, ch := range inst.Deq {
		p.in[ch].Deq()
	}
	for _, u := range inst.PredUpdates {
		p.preds[u.Index] = u.Op == isa.PredSet
	}
	if inst.Op == isa.OpHalt {
		p.halted = true
	}
	p.stats.Fired++
	p.stats.PerInst[idx]++
	if p.Trace != nil {
		p.Trace(cycle, idx, result)
	}
}

func (p *PE) readSrc(s isa.Src) isa.Word {
	switch s.Kind {
	case isa.SrcReg:
		return p.regs[s.Index]
	case isa.SrcImm:
		return s.Imm
	case isa.SrcIn:
		tok, ok := p.in[s.Index].Peek()
		if !ok {
			panic(fmt.Sprintf("pe %s: read of empty channel in%d (scheduler bug)", p.name, s.Index))
		}
		return tok.Data
	case isa.SrcInTag:
		tok, ok := p.in[s.Index].Peek()
		if !ok {
			panic(fmt.Sprintf("pe %s: tag read of empty channel in%d (scheduler bug)", p.name, s.Index))
		}
		return isa.Word(tok.Tag)
	default:
		panic(fmt.Sprintf("pe %s: read of invalid source kind %d", p.name, s.Kind))
	}
}
