// Package pe implements the triggered-instruction processing element: a
// small datapath (registers, predicates, one ALU) whose control is a
// hardware scheduler firing guarded instructions, with no program counter.
//
// Each cycle the scheduler evaluates every instruction's trigger against
// the predicate file and the status/tags of the input channels, checks
// that every channel the instruction reads is non-empty and every output
// channel it writes has space, and fires the highest-priority ready
// instruction (program order by default). Firing performs one ALU
// operation, routes the result to registers, output channels and/or a
// predicate, dequeues input channels, and applies explicit predicate
// set/clear side effects — all in one cycle.
//
// The paper's point is that this trigger resolution is a handful of gates
// in hardware, so the simulator models it the same way: at compile time
// (New) every trigger is packed into uint64 masks over the predicate file
// and the channel status bitmaps, and classification is a few word
// compares against per-cycle cached channel status (see classifyFast). A
// slice-walking reference scheduler is kept alongside and must produce
// bit-identical results; the differential tests in package workloads hold
// the two paths to that.
package pe

import (
	"fmt"
	"strings"

	"tia/internal/channel"
	"tia/internal/isa"
)

// SchedPolicy selects how the scheduler breaks ties among ready
// instructions. The paper's hardware uses a fixed priority encoder;
// round-robin is provided as an ablation.
type SchedPolicy uint8

const (
	// SchedPriority fires the first ready instruction in program order.
	SchedPriority SchedPolicy = iota
	// SchedRoundRobin rotates priority one slot after every fire.
	SchedRoundRobin
)

func (p SchedPolicy) String() string {
	if p == SchedRoundRobin {
		return "round-robin"
	}
	return "priority"
}

// Stats aggregates a PE's per-cycle outcomes.
type Stats struct {
	Fired       int64 // cycles an instruction fired
	IdleCycles  int64 // cycles with no trigger satisfied
	InputStall  int64 // cycles a trigger matched predicates but waited on input data
	OutputStall int64 // cycles a trigger was ready except for output backpressure
	Cycles      int64 // cycles stepped before halting
	PerInst     []int64
}

// tagCheck is one compiled head-tag condition: the head tag of input
// channel ch must equal (eq) or differ from (!eq) tag.
type tagCheck struct {
	ch  int
	tag isa.Tag
	eq  bool
}

// compiled caches per-instruction derived readiness sets: the slice form
// used by the reference scheduler and the packed form used by the bitmask
// scheduler (the hardware model: trigger resolution as word compares).
type compiled struct {
	inst    isa.Instruction
	inputs  []int // channels that must be non-empty (reference path)
	outputs []int // channels that must have space (reference path)

	predMask uint64 // predicate literals: predBits&predMask must equal predVal
	predVal  uint64
	inMask   uint64 // input channels that must be non-empty
	outMask  uint64 // output channels that must have space
	deqMask  uint64 // input channels dequeued on fire
	regWMask uint64 // data registers written by the result
	prWMask  uint64 // predicates written (result or set/clr)
	tagConds []tagCheck

	// Destinations and predicate updates flattened by kind, so fire()
	// avoids re-dispatching on Dst.Kind every cycle. Splitting by kind is
	// order-safe: the three destination spaces are disjoint, and
	// validation forbids writing one destination twice per instruction.
	regDsts   []int    // register indices receiving the result
	outDsts   []outDst // output channels receiving the result
	prDstMask uint64   // predicates receiving result != 0
	prUpdSet  uint64   // predicates unconditionally set on fire
	prUpdClr  uint64   // predicates unconditionally cleared on fire
}

// outDst is one compiled output-channel destination.
type outDst struct {
	ch  int
	tag isa.Tag
}

// stallKind records why the last unfired cycle did not fire, so skipped
// cycles can be accounted identically (see SkipCycles).
type stallKind uint8

const (
	stallIdle stallKind = iota
	stallInput
	stallOutput
)

// PE is one triggered-instruction processing element.
type PE struct {
	name string
	cfg  isa.Config
	prog []compiled

	regs     []isa.Word
	predBits uint64 // packed predicate file; bit i is predicate i
	halted   bool

	in  []*channel.Channel
	out []*channel.Channel

	policy     SchedPolicy
	rrOffset   int
	issueWidth int // max instructions fired per cycle (default 1)

	// Per-cycle channel status caches rebuilt by refreshStatus at the top
	// of each stepped cycle. Committed channel state cannot change within
	// a cycle (package channel's two-phase protocol), so one pass over the
	// ports replaces a Peek/CanAccept per trigger condition.
	inReady  uint64
	outReady uint64
	headTags []isa.Tag
	scanIn   []int // input channels some trigger references
	scanOut  []int // output channels some instruction writes

	reference bool // slice-walking reference scheduler (differential tests)
	lastStall stallKind

	stats Stats

	// initial state, kept for Reset
	initRegs  []isa.Word
	initPreds uint64

	// Compiled-stepping cache (see compiled.go): compileGen advances on
	// any mutation that could invalidate a specialized step closure;
	// compiledStep is reused while compiledFor matches it.
	compileGen   uint64
	compiledFor  uint64
	compiledStep func(cycle int64) bool

	// Trace, when non-nil, is called once per fire with the cycle, the
	// instruction index, and the ALU result.
	Trace func(cycle int64, instIdx int, result isa.Word)
}

// New compiles a program into a PE. The program is validated against cfg,
// and every trigger is compiled into its packed bitmask form.
func New(name string, cfg isa.Config, prog []isa.Instruction) (*PE, error) {
	if err := cfg.ValidateProgram(prog); err != nil {
		return nil, fmt.Errorf("pe %s: %w", name, err)
	}
	p := &PE{
		name:     name,
		cfg:      cfg,
		regs:     make([]isa.Word, cfg.NumRegs),
		in:       make([]*channel.Channel, cfg.NumIn),
		out:      make([]*channel.Channel, cfg.NumOut),
		headTags: make([]isa.Tag, cfg.NumIn),
		initRegs: make([]isa.Word, cfg.NumRegs),
	}
	p.stats.PerInst = make([]int64, len(prog))
	for i := range prog {
		inst := prog[i]
		ci := compiled{
			inst:    inst,
			inputs:  inst.ImplicitInputs(),
			outputs: inst.OutputChannels(),
		}
		for _, lit := range inst.Trigger.Preds {
			ci.predMask |= 1 << uint(lit.Index)
			if lit.Value {
				ci.predVal |= 1 << uint(lit.Index)
			}
		}
		for _, ch := range ci.inputs {
			ci.inMask |= 1 << uint(ch)
		}
		for _, ch := range ci.outputs {
			ci.outMask |= 1 << uint(ch)
		}
		for _, ch := range inst.Deq {
			ci.deqMask |= 1 << uint(ch)
		}
		for _, d := range inst.Dsts {
			switch d.Kind {
			case isa.DstReg:
				ci.regWMask |= 1 << uint(d.Index)
				ci.regDsts = append(ci.regDsts, d.Index)
			case isa.DstOut:
				ci.outDsts = append(ci.outDsts, outDst{ch: d.Index, tag: d.Tag})
			case isa.DstPred:
				ci.prWMask |= 1 << uint(d.Index)
				ci.prDstMask |= 1 << uint(d.Index)
			}
		}
		for _, u := range inst.PredUpdates {
			ci.prWMask |= 1 << uint(u.Index)
			if u.Op == isa.PredSet {
				ci.prUpdSet |= 1 << uint(u.Index)
			} else {
				ci.prUpdClr |= 1 << uint(u.Index)
			}
		}
		for _, cond := range inst.Trigger.Inputs {
			if cond.Cond == isa.TagAny {
				continue
			}
			ci.tagConds = append(ci.tagConds, tagCheck{
				ch: cond.Chan, tag: cond.Tag, eq: cond.Cond == isa.TagEq,
			})
		}
		p.prog = append(p.prog, ci)
	}
	// refreshStatus only needs the channels some instruction can observe;
	// everything else stays out of the per-cycle scan.
	var inU, outU uint64
	for i := range p.prog {
		ci := &p.prog[i]
		inU |= ci.inMask | ci.deqMask
		for _, tc := range ci.tagConds {
			inU |= 1 << uint(tc.ch)
		}
		outU |= ci.outMask
	}
	for i := 0; i < cfg.NumIn; i++ {
		if inU&(1<<uint(i)) != 0 {
			p.scanIn = append(p.scanIn, i)
		}
	}
	for i := 0; i < cfg.NumOut; i++ {
		if outU&(1<<uint(i)) != 0 {
			p.scanOut = append(p.scanOut, i)
		}
	}
	return p, nil
}

// Name returns the PE's fabric name.
func (p *PE) Name() string { return p.name }

// Config returns the PE's architectural configuration.
func (p *PE) Config() isa.Config { return p.cfg }

// Program returns the compiled program's instructions (static view).
func (p *PE) Program() []isa.Instruction {
	out := make([]isa.Instruction, len(p.prog))
	for i := range p.prog {
		out[i] = p.prog[i].inst
	}
	return out
}

// StaticInstructions returns the static program size.
func (p *PE) StaticInstructions() int { return len(p.prog) }

// SetPolicy selects the scheduler tie-break policy.
func (p *PE) SetPolicy(pol SchedPolicy) {
	p.policy = pol
	if pol != SchedRoundRobin {
		p.rrOffset = 0
	}
	p.invalidateCompiled()
}

// SetReferenceScheduler switches the PE between the compiled bitmask
// scheduler (default) and the slice-walking reference scheduler that
// evaluates triggers the way the original simulator did. The two are
// required to be bit-identical; the differential tests run both.
func (p *PE) SetReferenceScheduler(on bool) {
	p.reference = on
	p.invalidateCompiled()
}

// SetIssueWidth lets the scheduler fire up to w ready instructions per
// cycle — a superscalar trigger scheduler, one of the paper's natural
// extensions. Instructions fire with parallel semantics: triggers and
// operands are evaluated against start-of-cycle register/predicate state,
// register, predicate and halt effects commit at end of cycle, and two
// instructions conflict (lower priority skipped) if they write the same
// register or predicate, enqueue to the same output channel, or dequeue
// the same input channel.
func (p *PE) SetIssueWidth(w int) {
	if w < 1 {
		w = 1
	}
	p.issueWidth = w
	p.invalidateCompiled()
}

// SetReg establishes an initial register value (also restored by Reset).
func (p *PE) SetReg(i int, v isa.Word) {
	p.regs[i] = v
	p.initRegs[i] = v
	p.invalidateCompiled()
}

// SetPred establishes an initial predicate value (also restored by Reset).
func (p *PE) SetPred(i int, v bool) {
	p.checkPred(i)
	bit := uint64(1) << uint(i)
	if v {
		p.predBits |= bit
		p.initPreds |= bit
	} else {
		p.predBits &^= bit
		p.initPreds &^= bit
	}
	p.invalidateCompiled()
}

func (p *PE) checkPred(i int) {
	if i < 0 || i >= p.cfg.NumPreds {
		panic(fmt.Sprintf("pe %s: predicate index %d out of range [0,%d)", p.name, i, p.cfg.NumPreds))
	}
}

// Reg returns the current value of register i (for tests and debuggers).
func (p *PE) Reg(i int) isa.Word { return p.regs[i] }

// Pred returns the current value of predicate i.
func (p *PE) Pred(i int) bool {
	p.checkPred(i)
	return p.predBits&(1<<uint(i)) != 0
}

// ConnectIn attaches ch as input channel idx, panicking on a bad index
// or double-connection (use TryConnectIn on untrusted paths).
func (p *PE) ConnectIn(idx int, ch *channel.Channel) {
	if err := p.TryConnectIn(idx, ch); err != nil {
		panic(err.Error())
	}
}

// TryConnectIn implements fabric.CheckedInPort.
func (p *PE) TryConnectIn(idx int, ch *channel.Channel) error {
	if idx < 0 || idx >= len(p.in) {
		return fmt.Errorf("pe %s: input index %d out of range", p.name, idx)
	}
	if p.in[idx] != nil {
		return fmt.Errorf("pe %s: input %d connected twice", p.name, idx)
	}
	p.in[idx] = ch
	p.invalidateCompiled()
	return nil
}

// ConnectOut attaches ch as output channel idx, panicking on a bad index
// or double-connection (use TryConnectOut on untrusted paths).
func (p *PE) ConnectOut(idx int, ch *channel.Channel) {
	if err := p.TryConnectOut(idx, ch); err != nil {
		panic(err.Error())
	}
}

// TryConnectOut implements fabric.CheckedOutPort.
func (p *PE) TryConnectOut(idx int, ch *channel.Channel) error {
	if idx < 0 || idx >= len(p.out) {
		return fmt.Errorf("pe %s: output index %d out of range", p.name, idx)
	}
	if p.out[idx] != nil {
		return fmt.Errorf("pe %s: output %d connected twice", p.name, idx)
	}
	p.out[idx] = ch
	p.invalidateCompiled()
	return nil
}

// CheckConnections verifies that every channel the program references is
// attached. The fabric calls this before simulation.
func (p *PE) CheckConnections() error {
	for _, ci := range p.prog {
		for _, ch := range ci.inputs {
			if p.in[ch] == nil {
				return fmt.Errorf("pe %s: %s uses unconnected input in%d", p.name, ci.inst.Label, ch)
			}
		}
		for _, ch := range ci.outputs {
			if p.out[ch] == nil {
				return fmt.Errorf("pe %s: %s uses unconnected output out%d", p.name, ci.inst.Label, ch)
			}
		}
	}
	return nil
}

// Done reports whether the PE has executed a halt instruction.
func (p *PE) Done() bool { return p.halted }

// Stats returns a snapshot of the PE's counters.
func (p *PE) Stats() Stats {
	s := p.stats
	s.PerInst = append([]int64(nil), p.stats.PerInst...)
	return s
}

// DynamicInstructions returns the total number of instructions fired.
func (p *PE) DynamicInstructions() int64 { return p.stats.Fired }

// SkipCycles accounts for n cycles during which the fabric's event-driven
// stepper did not call Step because neither the PE's architectural state
// nor any attached channel's committed state could have changed. Each
// skipped cycle would have classified exactly like the last stepped one,
// so the counters advance as if Step had been called, keeping statistics
// bit-identical with dense stepping. A halted PE accrues nothing, exactly
// as its Step would.
func (p *PE) SkipCycles(n int64) {
	if n <= 0 || p.halted {
		return
	}
	p.stats.Cycles += n
	switch p.lastStall {
	case stallOutput:
		p.stats.OutputStall += n
	case stallInput:
		p.stats.InputStall += n
	default:
		p.stats.IdleCycles += n
	}
}

// DumpState renders the PE's architectural state on one line — the first
// thing to look at when a fabric deadlocks.
func (p *PE) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.name)
	if p.halted {
		b.WriteString(" halted")
	}
	b.WriteString(" regs[")
	for i, r := range p.regs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	b.WriteString("] preds[")
	for i := 0; i < p.cfg.NumPreds; i++ {
		if p.predBits&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString("]")
	// Which instruction is closest to firing? Classified with the live
	// reference path: DumpState runs outside the cycle loop, where the
	// status caches may be stale or the PE only partially connected.
	for i := range p.prog {
		if !p.connected(&p.prog[i]) {
			fmt.Fprintf(&b, " %s:unconnected", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		}
		switch p.classifyRef(&p.prog[i]) {
		case waitingInput:
			fmt.Fprintf(&b, " %s:awaiting-input", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		case waitingOut:
			fmt.Fprintf(&b, " %s:awaiting-output", labelOrIdx(&p.prog[i].inst, i))
			return b.String()
		}
	}
	b.WriteString(" no-trigger-armed")
	return b.String()
}

// connected reports whether every channel the instruction references is
// attached (DumpState may run on partially built PEs).
func (p *PE) connected(ci *compiled) bool {
	for _, ch := range ci.inputs {
		if p.in[ch] == nil {
			return false
		}
	}
	for _, ch := range ci.outputs {
		if p.out[ch] == nil {
			return false
		}
	}
	return true
}

func labelOrIdx(in *isa.Instruction, i int) string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("#%d", i)
}

// Reset restores initial architectural state and zeroes statistics.
// Attached channels are not reset; the fabric owns them.
func (p *PE) Reset() {
	copy(p.regs, p.initRegs)
	p.predBits = p.initPreds
	p.halted = false
	p.rrOffset = 0
	p.lastStall = stallIdle
	per := p.stats.PerInst
	for i := range per {
		per[i] = 0
	}
	p.stats = Stats{PerInst: per}
}

// ready classifies an instruction's readiness this cycle.
type readiness uint8

const (
	notTriggered readiness = iota // predicate guard false
	waitingInput                  // predicates hold, some input empty or tag mismatch
	waitingOut                    // inputs ready, some output lacks space
	fireable
)

// classify dispatches to the active scheduler implementation.
func (p *PE) classify(ci *compiled) readiness {
	if p.reference {
		return p.classifyRef(ci)
	}
	return p.classifyFast(ci)
}

// classifyFast resolves the trigger the way the hardware does: word
// compares against the packed predicate file and the per-cycle channel
// status bitmaps, plus a (usually empty) compiled tag-condition table.
// refreshStatus must have run this cycle.
func (p *PE) classifyFast(ci *compiled) readiness {
	if p.predBits&ci.predMask != ci.predVal {
		return notTriggered
	}
	if ci.inMask&^p.inReady != 0 {
		return waitingInput
	}
	for i := range ci.tagConds {
		tc := &ci.tagConds[i]
		if (p.headTags[tc.ch] == tc.tag) != tc.eq {
			return notTriggered
		}
	}
	if ci.outMask&^p.outReady != 0 {
		return waitingOut
	}
	return fireable
}

// classifyRef is the reference scheduler: it walks the trigger's literal
// slices and queries the channels directly, exactly as the original
// simulator did. Kept for differential testing and cold paths.
func (p *PE) classifyRef(ci *compiled) readiness {
	for _, lit := range ci.inst.Trigger.Preds {
		if p.predBits&(1<<uint(lit.Index)) != 0 != lit.Value {
			return notTriggered
		}
	}
	for _, ch := range ci.inputs {
		if _, ok := p.in[ch].Peek(); !ok {
			return waitingInput
		}
	}
	for _, cond := range ci.inst.Trigger.Inputs {
		tok, _ := p.in[cond.Chan].Peek()
		switch cond.Cond {
		case isa.TagEq:
			if tok.Tag != cond.Tag {
				return notTriggered
			}
		case isa.TagNe:
			if tok.Tag == cond.Tag {
				return notTriggered
			}
		}
	}
	for _, ch := range ci.outputs {
		if !p.out[ch].CanAccept() {
			return waitingOut
		}
	}
	return fireable
}

// ClassifyAll refreshes the channel status caches and classifies every
// program instruction once, returning how many are fireable. It is the
// external benchmark hook for the trigger-resolution hot path (see
// cmd/tiabench -json-out and BenchmarkClassify): reference selects the
// slice-walking reference classifier instead of the bitmask fast path.
func (p *PE) ClassifyAll(reference bool) int {
	p.refreshStatus()
	n := 0
	for i := range p.prog {
		var r readiness
		if reference {
			r = p.classifyRef(&p.prog[i])
		} else {
			r = p.classifyFast(&p.prog[i])
		}
		if r == fireable {
			n++
		}
	}
	return n
}

// refreshStatus rebuilds the per-cycle channel status caches: one bit per
// input channel that is non-empty (with its head tag), one bit per output
// channel with send credit.
func (p *PE) refreshStatus() {
	var in, out uint64
	for _, i := range p.scanIn {
		ch := p.in[i]
		if ch == nil {
			continue
		}
		if tok, ok := ch.Peek(); ok {
			in |= 1 << uint(i)
			p.headTags[i] = tok.Tag
		}
	}
	for _, i := range p.scanOut {
		if ch := p.out[i]; ch != nil && ch.CanAccept() {
			out |= 1 << uint(i)
		}
	}
	p.inReady, p.outReady = in, out
}

// Step executes one cycle: the scheduler picks a ready instruction and
// fires it (or up to the configured issue width). It returns true if an
// instruction fired.
func (p *PE) Step(cycle int64) bool {
	if p.halted {
		return false
	}
	if p.issueWidth > 1 {
		return p.stepWide(cycle)
	}
	p.stats.Cycles++
	if !p.reference {
		p.refreshStatus()
	}
	n := len(p.prog)
	sawInputWait, sawOutputWait := false, false
	// rrOffset is zero except under round-robin, so the scan starts at
	// program order for priority scheduling; the wrap is an add-and-reset
	// instead of a modulo per iteration.
	idx := p.rrOffset
	ref := p.reference
	for k := 0; k < n; k++ {
		// Dispatch picked once outside the switch so the fast path inlines.
		var r readiness
		if ref {
			r = p.classifyRef(&p.prog[idx])
		} else {
			r = p.classifyFast(&p.prog[idx])
		}
		switch r {
		case fireable:
			p.fire(cycle, idx)
			if p.policy == SchedRoundRobin {
				p.rrOffset = idx + 1
				if p.rrOffset == n {
					p.rrOffset = 0
				}
			}
			return true
		case waitingInput:
			sawInputWait = true
		case waitingOut:
			sawOutputWait = true
		}
		idx++
		if idx == n {
			idx = 0
		}
	}
	switch {
	case sawOutputWait:
		p.stats.OutputStall++
		p.lastStall = stallOutput
	case sawInputWait:
		p.stats.InputStall++
		p.lastStall = stallInput
	default:
		p.stats.IdleCycles++
		p.lastStall = stallIdle
	}
	return false
}

func (p *PE) fire(cycle int64, idx int) {
	ci := &p.prog[idx]
	inst := &ci.inst
	var a, b isa.Word
	if inst.Op.Arity() >= 1 {
		a = p.readSrc(inst.Srcs[0])
	}
	if inst.Op.Arity() >= 2 {
		b = p.readSrc(inst.Srcs[1])
	}
	result := inst.Op.Eval(a, b)
	for _, r := range ci.regDsts {
		p.regs[r] = result
	}
	for _, d := range ci.outDsts {
		p.out[d.ch].Send(channel.Token{Data: result, Tag: d.tag})
	}
	if result != 0 {
		p.predBits |= ci.prDstMask
	} else {
		p.predBits &^= ci.prDstMask
	}
	for _, ch := range inst.Deq {
		p.in[ch].Deq()
	}
	p.predBits = p.predBits&^ci.prUpdClr | ci.prUpdSet
	if inst.Op == isa.OpHalt {
		p.halted = true
	}
	p.stats.Fired++
	p.stats.PerInst[idx]++
	if p.Trace != nil {
		p.Trace(cycle, idx, result)
	}
}

func (p *PE) readSrc(s isa.Src) isa.Word {
	switch s.Kind {
	case isa.SrcReg:
		return p.regs[s.Index]
	case isa.SrcImm:
		return s.Imm
	case isa.SrcIn:
		tok, ok := p.in[s.Index].Peek()
		if !ok {
			panic(fmt.Sprintf("pe %s: read of empty channel in%d (scheduler bug)", p.name, s.Index))
		}
		return tok.Data
	case isa.SrcInTag:
		tok, ok := p.in[s.Index].Peek()
		if !ok {
			panic(fmt.Sprintf("pe %s: tag read of empty channel in%d (scheduler bug)", p.name, s.Index))
		}
		return isa.Word(tok.Tag)
	default:
		panic(fmt.Sprintf("pe %s: read of invalid source kind %d", p.name, s.Kind))
	}
}
