// Package batchrun is the structure-of-arrays batched stepper for
// campaign execution: one topology, K independent lanes of dynamic
// state, advanced in lockstep one cycle at a time.
//
// A campaign (internal/core's resilience runners, the service's
// campaign jobs, tiabench sweeps) executes the same netlist hundreds of
// times, varying only the fault-plan seed. Building a fresh instance
// per run pays the whole static cost — netlist construction, wiring
// tables, trigger classification, compiled step closures, fault-site
// scanning and PRNG seeding — for a few thousand simulated cycles of
// dynamic work. The batch splits those axes: everything static is
// instantiated once per lane for the lifetime of the batch, and only
// the dynamic state (register files, predicate words, channel ring
// buffers, scratchpad contents, PRNG positions, window schedules) is
// re-armed between runs via Fabric.Reset + faults.Rearm, both of which
// are proven bit-identical to a fresh build by differential tests.
//
// Scheduling never changes results: each lane is driven by the same
// fabric.Stepper that implements Fabric.RunContext, one cycle per
// lockstep turn, and a lane's outcome depends only on its own state.
// The lane-active bitmask tracks which lanes still have a run in
// flight; lanes retire independently (completion, deadlock, fault
// divergence, budget exhaustion) and are immediately re-armed with the
// next pending run. A lane that outlives the batch's eviction horizon
// is evicted: its remaining cycles are finished on the serial stepper
// (Stepper.Finish) so one livelocked run cannot hold the lockstep loop
// hostage — eviction changes scheduling, never results, and the
// recorded outcome taxonomy is exact.
package batchrun

import (
	"context"
	"fmt"
	"math/bits"

	"tia/internal/fabric"
)

// Lane is one unit of dynamic state in the batch: a fabric instance
// plus whatever per-lane payload the caller attached (typically the
// workload instance and its fault injector). The fabric's static
// structure is built once, when the batch is; runs only Reset and
// re-arm it.
type Lane struct {
	// ID is the lane's index in the batch, fixed for its lifetime.
	ID int
	// Fabric is the lane's instance; the batch drives it via BeginRun.
	Fabric *fabric.Fabric
	// Payload is the caller's per-lane state (instance, injector, ...).
	Payload any

	stepper *fabric.Stepper
	run     int   // index of the run in flight, -1 when idle
	steps   int64 // lockstep cycles spent on the current run
}

// Run reports the index of the run the lane is currently executing
// (valid inside the arm/done callbacks).
func (l *Lane) Run() int { return l.run }

// Config sizes a batch.
type Config struct {
	// Lanes is the number of concurrent lanes (K). Values below 1 are
	// treated as 1.
	Lanes int
	// MaxCycles is the per-run cycle budget handed to each lane's
	// stepper, exactly as a serial RunContext would receive it.
	MaxCycles int64
	// EvictAfter, when positive, is the lockstep-cycle horizon after
	// which a still-running lane is evicted from the batch and finished
	// on the serial stepper. Zero means lanes are never evicted (a
	// hung lane then runs its full budget inside the lockstep loop,
	// which is correct but lets one livelocked run dominate the loop).
	EvictAfter int64
}

// Batch is a set of lanes over one topology. Create with New, execute
// campaigns with Run; a batch is reusable across campaigns (Run resets
// the lane bookkeeping) but not concurrently.
type Batch struct {
	cfg   Config
	lanes []*Lane
	mask  []uint64 // lane-active bitmask, bit i = lanes[i] has a run in flight
}

// New builds a batch of cfg.Lanes lanes, calling build once per lane.
// build returns the lane's fabric and an arbitrary payload stored on
// the lane. The fabrics must be structurally identical instantiations
// of one topology — the batch does not check this, but the campaign
// contract (bit-identical to serial) only holds if each lane's run is
// the run a fresh build would have produced.
func New(cfg Config, build func(lane int) (*fabric.Fabric, any, error)) (*Batch, error) {
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.MaxCycles < 1 {
		return nil, fmt.Errorf("batchrun: MaxCycles %d < 1", cfg.MaxCycles)
	}
	b := &Batch{
		cfg:  cfg,
		mask: make([]uint64, (cfg.Lanes+63)/64),
	}
	for i := 0; i < cfg.Lanes; i++ {
		f, payload, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("batchrun: build lane %d: %w", i, err)
		}
		if f == nil {
			return nil, fmt.Errorf("batchrun: build lane %d returned nil fabric", i)
		}
		b.lanes = append(b.lanes, &Lane{ID: i, Fabric: f, Payload: payload, run: -1})
	}
	return b, nil
}

// Lanes returns the batch's lane count.
func (b *Batch) Lanes() int { return len(b.lanes) }

// ActiveMask returns the lane-active bitmask words (bit i of word i/64
// set while lane i has a run in flight). The returned slice aliases the
// batch's state; treat it as read-only.
func (b *Batch) ActiveMask() []uint64 { return b.mask }

func (b *Batch) setActive(i int, on bool) {
	if on {
		b.mask[i/64] |= 1 << uint(i%64)
	} else {
		b.mask[i/64] &^= 1 << uint(i%64)
	}
}

// Run executes runs runs across the batch's lanes. For each run it
// picks an idle lane, calls arm(lane, run) to re-arm the lane's
// dynamic state (Reset + Rearm, or a first-run Attach), then advances
// all armed lanes in lockstep, one cycle per lane per turn. When a
// lane's run finishes — for any reason the serial stepper would have
// finished it — done(lane, run, result, err) is called with exactly the
// Result and error a serial RunContext of that run would have
// returned, and the lane is re-armed with the next pending run.
// Lanes exceeding cfg.EvictAfter lockstep cycles are evicted and
// finished serially before their done callback runs.
//
// An error from arm or done aborts the batch immediately (in-flight
// lanes are abandoned, their fabrics left mid-run; Run resets lanes on
// the next call). Run itself never reorders or rewrites outcomes: the
// callbacks observe per-run results identical to serial execution, in
// retirement order.
func (b *Batch) Run(ctx context.Context, runs int, arm func(l *Lane, run int) error, done func(l *Lane, run int, res fabric.Result, err error) error) error {
	for _, l := range b.lanes {
		l.run = -1
		l.stepper = nil
		l.steps = 0
	}
	for i := range b.mask {
		b.mask[i] = 0
	}
	next := 0
	refill := func(l *Lane) error {
		for next < runs {
			r := next
			next++
			if err := arm(l, r); err != nil {
				return fmt.Errorf("batchrun: arm lane %d run %d: %w", l.ID, r, err)
			}
			st, err := l.Fabric.BeginRun(ctx, b.cfg.MaxCycles)
			if err != nil {
				return fmt.Errorf("batchrun: begin lane %d run %d: %w", l.ID, r, err)
			}
			l.stepper, l.run, l.steps = st, r, 0
			b.setActive(l.ID, true)
			return nil
		}
		return nil
	}
	retire := func(l *Lane) error {
		res, err := l.stepper.Result()
		run := l.run
		b.setActive(l.ID, false)
		dErr := done(l, run, res, err)
		l.stepper, l.run, l.steps = nil, -1, 0
		if dErr != nil {
			return dErr
		}
		return refill(l)
	}
	for _, l := range b.lanes {
		if err := refill(l); err != nil {
			return err
		}
	}
	for {
		live := false
		for w, word := range b.mask {
			for word != 0 {
				i := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				l := b.lanes[i]
				live = true
				if l.stepper.Step() {
					if err := retire(l); err != nil {
						return err
					}
					continue
				}
				l.steps++
				if b.cfg.EvictAfter > 0 && l.steps >= b.cfg.EvictAfter {
					// Evict: the lane has outlived the horizon (almost
					// always a hung run burning its budget). Finish it on
					// the serial stepper so the lockstep loop stays dense;
					// the outcome is the same stepper's, hence identical.
					l.stepper.Finish()
					if err := retire(l); err != nil {
						return err
					}
				}
			}
		}
		if !live {
			return nil
		}
	}
}
