package batchrun

import (
	"context"
	"testing"

	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/faults"
	"tia/internal/isa"
)

var lineWords = []isa.Word{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}

// buildLine returns a src -> sink fabric, the toy topology the batch
// tests drive under per-run fault plans (seeds change dynamic behavior
// per run, so lanes genuinely diverge and retire out of order).
func buildLine() (*fabric.Fabric, *fabric.Sink) {
	f := fabric.New(fabric.DefaultConfig())
	src := fabric.NewWordSource("src", lineWords, true)
	snk := fabric.NewSink("snk")
	f.Add(src)
	f.Add(snk)
	f.WireOpt(src, 0, snk, 0, 4, 1)
	return f, snk
}

func planFor(run int) faults.Plan {
	return faults.Plan{
		Seed:       7000 + int64(run),
		JitterRate: 0.4, JitterMax: 5,
		DropRate: 0.08, DupRate: 0.08,
	}
}

type outcome struct {
	res  fabric.Result
	err  error
	toks []channel.Token
	cnt  faults.Counts
}

// serialOutcomes runs each plan on a fresh fabric + fresh Attach — the
// oracle the batch must reproduce bit for bit.
func serialOutcomes(t *testing.T, runs int, budget int64) []outcome {
	t.Helper()
	outs := make([]outcome, runs)
	for r := 0; r < runs; r++ {
		f, snk := buildLine()
		inj, err := faults.Attach(f, planFor(r))
		if err != nil {
			t.Fatalf("run %d: Attach: %v", r, err)
		}
		res, err := f.Run(budget)
		outs[r] = outcome{res: res, err: err, toks: snk.Tokens(), cnt: inj.Counts()}
	}
	return outs
}

// batchLane is the test payload: the lane's sink and injector.
type batchLane struct {
	snk *fabric.Sink
	inj *faults.Injector
}

func newLineBatch(t *testing.T, lanes int, budget, evictAfter int64) *Batch {
	t.Helper()
	b, err := New(Config{Lanes: lanes, MaxCycles: budget, EvictAfter: evictAfter},
		func(lane int) (*fabric.Fabric, any, error) {
			f, snk := buildLine()
			return f, &batchLane{snk: snk}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func batchOutcomes(t *testing.T, b *Batch, runs int) []outcome {
	t.Helper()
	outs := make([]outcome, runs)
	arm := func(l *Lane, run int) error {
		bl := l.Payload.(*batchLane)
		if bl.inj == nil {
			inj, err := faults.Attach(l.Fabric, planFor(run))
			if err != nil {
				return err
			}
			bl.inj = inj
			return nil
		}
		l.Fabric.Reset()
		return bl.inj.Rearm(planFor(run))
	}
	done := func(l *Lane, run int, res fabric.Result, err error) error {
		bl := l.Payload.(*batchLane)
		outs[run] = outcome{res: res, err: err, toks: append([]channel.Token(nil), bl.snk.Tokens()...), cnt: bl.inj.Counts()}
		return nil
	}
	if err := b.Run(context.Background(), runs, arm, done); err != nil {
		t.Fatal(err)
	}
	return outs
}

func diffOutcomes(t *testing.T, got, want []outcome, label string) {
	t.Helper()
	for r := range want {
		g, w := got[r], want[r]
		if (g.err == nil) != (w.err == nil) || (g.err != nil && g.err.Error() != w.err.Error()) {
			t.Errorf("%s: run %d: err %v, want %v", label, r, g.err, w.err)
		}
		if g.res != w.res {
			t.Errorf("%s: run %d: result %+v, want %+v", label, r, g.res, w.res)
		}
		if g.cnt != w.cnt {
			t.Errorf("%s: run %d: counts %+v, want %+v", label, r, g.cnt, w.cnt)
		}
		if len(g.toks) != len(w.toks) {
			t.Errorf("%s: run %d: %d tokens, want %d", label, r, len(g.toks), len(w.toks))
			continue
		}
		for i := range w.toks {
			if g.toks[i] != w.toks[i] {
				t.Errorf("%s: run %d: token %d = %+v, want %+v", label, r, i, g.toks[i], w.toks[i])
				break
			}
		}
	}
}

// TestBatchMatchesSerial: lockstep execution over reused lanes must
// reproduce fresh-instance serial runs exactly — results, errors
// (including deadlocks from dropped EODs), tokens and injection counts
// — with more runs than lanes so lanes refill out of order.
func TestBatchMatchesSerial(t *testing.T) {
	const runs, budget = 13, 10_000
	want := serialOutcomes(t, runs, budget)
	b := newLineBatch(t, 4, budget, 0)
	got := batchOutcomes(t, b, runs)
	diffOutcomes(t, got, want, "batch")

	// Batch reuse: a second campaign over the same batch must still
	// match (lanes re-arm from whatever state the last campaign left).
	again := batchOutcomes(t, b, runs)
	diffOutcomes(t, again, want, "batch reuse")
}

// TestBatchEvictionIdentical: an absurdly tight eviction horizon (every
// run evicted after 3 lockstep cycles, finished serially) must not
// change a single outcome — eviction is scheduling, never results.
func TestBatchEvictionIdentical(t *testing.T) {
	const runs, budget = 13, 10_000
	want := serialOutcomes(t, runs, budget)
	b := newLineBatch(t, 4, budget, 3)
	got := batchOutcomes(t, b, runs)
	diffOutcomes(t, got, want, "evicted batch")
}

// TestBatchBookkeeping: every run is armed exactly once and retired
// exactly once, lanes stay within range, the active mask drains to
// zero, and a batch wider than the run count leaves the extra lanes
// idle.
func TestBatchBookkeeping(t *testing.T) {
	const runs, lanes = 5, 8
	b := newLineBatch(t, lanes, 10_000, 0)
	armed := make([]int, runs)
	retired := make([]int, runs)
	arm := func(l *Lane, run int) error {
		if l.ID < 0 || l.ID >= lanes {
			t.Errorf("arm: lane ID %d out of range", l.ID)
		}
		armed[run]++
		bl := l.Payload.(*batchLane)
		if bl.inj == nil {
			inj, err := faults.Attach(l.Fabric, planFor(run))
			if err != nil {
				return err
			}
			bl.inj = inj
			return nil
		}
		l.Fabric.Reset()
		return bl.inj.Rearm(planFor(run))
	}
	done := func(l *Lane, run int, res fabric.Result, err error) error {
		if l.Run() != run {
			t.Errorf("done: lane reports run %d, callback got %d", l.Run(), run)
		}
		retired[run]++
		return nil
	}
	if err := b.Run(context.Background(), runs, arm, done); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < runs; r++ {
		if armed[r] != 1 || retired[r] != 1 {
			t.Errorf("run %d: armed %d times, retired %d times, want 1/1", r, armed[r], retired[r])
		}
	}
	for w, word := range b.ActiveMask() {
		if word != 0 {
			t.Errorf("active mask word %d = %#x after Run, want 0", w, word)
		}
	}
	if got := b.Lanes(); got != lanes {
		t.Errorf("Lanes() = %d, want %d", got, lanes)
	}
}

// TestBatchStepAllocationFree extends the simulator's allocation gates
// to the batched steady-state step path: once every lane has run a
// campaign (buffers grown, injector attached, compiled state warm), an
// entire further campaign — arm via Reset+Rearm, lockstep stepping,
// retirement, refill — performs zero heap allocations. This is the
// pooled-lane contract: batching adds no per-cycle or per-run garbage.
func TestBatchStepAllocationFree(t *testing.T) {
	const runs, budget = 9, 10_000
	// Jitter and flips only: every run completes. Drops would deadlock
	// some runs, whose end-of-run diagnosis legitimately builds an error
	// string (serial pays the same); the gate is on the step path.
	gatePlan := func(run int) faults.Plan {
		return faults.Plan{Seed: 7000 + int64(run), JitterRate: 0.4, JitterMax: 5, FlipRate: 0.1}
	}
	b := newLineBatch(t, 3, budget, 0)
	arm := func(l *Lane, run int) error {
		bl := l.Payload.(*batchLane)
		if bl.inj == nil {
			inj, err := faults.Attach(l.Fabric, gatePlan(run))
			if err != nil {
				return err
			}
			bl.inj = inj
			return nil
		}
		l.Fabric.Reset()
		return bl.inj.Rearm(gatePlan(run))
	}
	done := func(l *Lane, run int, res fabric.Result, err error) error { return nil }
	campaign := func() {
		if err := b.Run(context.Background(), runs, arm, done); err != nil {
			t.Fatal(err)
		}
	}
	campaign() // warm: attach injectors, grow lane buffers to steady state
	avg := testing.AllocsPerRun(5, campaign)
	if avg != 0 {
		t.Errorf("steady-state batched campaign: %.1f allocs/run, want 0", avg)
	}
}
