// Package gpp models the traditional general-purpose processor the paper
// uses as its area-normalized comparison target: an in-order scalar RISC
// core with a register file, a flat data memory behind a first-level
// cache, and a simple cost model (1 cycle per instruction at peak, extra
// cycles for loads, multiplies and taken branches).
//
// The paper measured real cores; this deterministic model is the
// substitution documented in DESIGN.md. Workload kernels are hand-written
// in the core's assembly (see package workloads), and the harness compares
// cycles-per-unit-of-work against the spatial fabrics.
package gpp

import (
	"fmt"

	"tia/internal/isa"
)

// Kind discriminates instruction forms.
type Kind uint8

const (
	// KindALU performs rd = op(rs1, rs2).
	KindALU Kind = iota
	// KindLoad performs rd = mem[rs1 + off].
	KindLoad
	// KindStore performs mem[rs1 + off] = rs2.
	KindStore
	// KindBr branches to Target when the condition over (rs1, rs2) holds.
	KindBr
	// KindJmp branches unconditionally.
	KindJmp
	// KindHalt stops the core.
	KindHalt
)

// BrOp enumerates branch conditions (same semantics as package pcpe).
type BrOp uint8

const (
	BrEQ BrOp = iota
	BrNE
	BrLTS
	BrGES
	BrLTU
	BrGEU
)

var brNames = []string{"beq", "bne", "blts", "bges", "bltu", "bgeu"}

// String returns the branch mnemonic.
func (b BrOp) String() string {
	if int(b) < len(brNames) {
		return brNames[b]
	}
	return fmt.Sprintf("br(%d)", uint8(b))
}

// BrOpByName maps a mnemonic to its BrOp.
func BrOpByName(name string) (BrOp, bool) {
	for i, n := range brNames {
		if n == name {
			return BrOp(i), true
		}
	}
	return 0, false
}

func (b BrOp) eval(x, y isa.Word) bool {
	switch b {
	case BrEQ:
		return x == y
	case BrNE:
		return x != y
	case BrLTS:
		return int32(x) < int32(y)
	case BrGES:
		return int32(x) >= int32(y)
	case BrLTU:
		return x < y
	case BrGEU:
		return x >= y
	default:
		panic(fmt.Sprintf("gpp: invalid branch op %d", b))
	}
}

// Src is a register or immediate operand.
type Src struct {
	IsImm bool
	Reg   int
	Imm   isa.Word
}

// R and I build register and immediate operands.
func R(r int) Src      { return Src{Reg: r} }
func I(v isa.Word) Src { return Src{IsImm: true, Imm: v} }

// Inst is one instruction. Branch targets are labels resolved by New.
type Inst struct {
	Label  string
	Kind   Kind
	Op     isa.Opcode // KindALU
	BrOp   BrOp       // KindBr
	Rd     int        // KindALU, KindLoad
	Rs1    Src        // all kinds with operands (address base for Load/Store)
	Rs2    Src        // ALU second operand, Store value, Br second operand
	Off    isa.Word   // KindLoad, KindStore address offset
	Target string     // KindBr, KindJmp
}

// String renders the operand in assembly syntax.
func (s Src) String() string {
	if s.IsImm {
		return fmt.Sprintf("#%d", s.Imm)
	}
	return fmt.Sprintf("r%d", s.Reg)
}

// String renders the instruction in the parseable assembly dialect.
func (in Inst) String() string {
	prefix := ""
	if in.Label != "" {
		prefix = in.Label + ": "
	}
	switch in.Kind {
	case KindALU:
		s := prefix + in.Op.String() + fmt.Sprintf(" r%d", in.Rd)
		for i := 0; i < in.Op.Arity(); i++ {
			src := in.Rs1
			if i == 1 {
				src = in.Rs2
			}
			s += ", " + src.String()
		}
		return s
	case KindLoad:
		return fmt.Sprintf("%slw r%d, %s, #%d", prefix, in.Rd, in.Rs1, in.Off)
	case KindStore:
		return fmt.Sprintf("%ssw %s, %s, #%d", prefix, in.Rs2, in.Rs1, in.Off)
	case KindBr:
		return fmt.Sprintf("%s%s %s, %s, %s", prefix, in.BrOp, in.Rs1, in.Rs2, in.Target)
	case KindJmp:
		return fmt.Sprintf("%sjmp %s", prefix, in.Target)
	case KindHalt:
		return prefix + "halt"
	default:
		return prefix + "???"
	}
}

// Config is the core's architectural and cost configuration.
type Config struct {
	NumRegs  int
	MemWords int
	// LoadLatency is the total cycles a load occupies (L1 hit); >= 1.
	LoadLatency int
	// MulLatency is the total cycles a multiply occupies; >= 1.
	MulLatency int
	// TakenPenalty is extra cycles for a taken branch or jump.
	TakenPenalty int
}

// DefaultConfig models a simple in-order scalar core: 32 registers,
// 2-cycle loads, 3-cycle multiplies, 1-cycle taken-branch penalty.
func DefaultConfig(memWords int) Config {
	return Config{
		NumRegs:      32,
		MemWords:     memWords,
		LoadLatency:  2,
		MulLatency:   3,
		TakenPenalty: 1,
	}
}

// Stats aggregates the core's execution counters.
type Stats struct {
	Instructions int64
	Cycles       int64
	Loads        int64
	Stores       int64
	Branches     int64
	Taken        int64
}

type compiled struct {
	inst   Inst
	target int
}

// Core is one general-purpose processor instance.
type Core struct {
	cfg    Config
	prog   []compiled
	regs   []isa.Word
	mem    []isa.Word
	pc     int
	halted bool
	stats  Stats
}

// New compiles and validates a program.
func New(cfg Config, prog []Inst) (*Core, error) {
	if len(prog) == 0 {
		return nil, fmt.Errorf("gpp: empty program")
	}
	if cfg.LoadLatency < 1 {
		cfg.LoadLatency = 1
	}
	if cfg.MulLatency < 1 {
		cfg.MulLatency = 1
	}
	labels := map[string]int{}
	for i, in := range prog {
		if in.Label == "" {
			continue
		}
		if _, dup := labels[in.Label]; dup {
			return nil, fmt.Errorf("gpp: duplicate label %q", in.Label)
		}
		labels[in.Label] = i
	}
	c := &Core{
		cfg:  cfg,
		regs: make([]isa.Word, cfg.NumRegs),
		mem:  make([]isa.Word, cfg.MemWords),
	}
	for i, in := range prog {
		ci := compiled{inst: in, target: -1}
		if in.Kind == KindBr || in.Kind == KindJmp {
			t, ok := labels[in.Target]
			if !ok {
				return nil, fmt.Errorf("gpp: instruction %d: unknown target %q", i, in.Target)
			}
			ci.target = t
		}
		if err := c.validate(i, &in); err != nil {
			return nil, err
		}
		c.prog = append(c.prog, ci)
	}
	return c, nil
}

func (c *Core) validate(i int, in *Inst) error {
	checkReg := func(r int) error {
		if r < 0 || r >= c.cfg.NumRegs {
			return fmt.Errorf("gpp: instruction %d: register r%d out of range", i, r)
		}
		return nil
	}
	checkSrc := func(s Src) error {
		if s.IsImm {
			return nil
		}
		return checkReg(s.Reg)
	}
	switch in.Kind {
	case KindALU:
		if err := checkReg(in.Rd); err != nil {
			return err
		}
		if in.Op.Arity() >= 1 {
			if err := checkSrc(in.Rs1); err != nil {
				return err
			}
		}
		if in.Op.Arity() >= 2 {
			if err := checkSrc(in.Rs2); err != nil {
				return err
			}
		}
	case KindLoad:
		if err := checkReg(in.Rd); err != nil {
			return err
		}
		return checkSrc(in.Rs1)
	case KindStore:
		if err := checkSrc(in.Rs1); err != nil {
			return err
		}
		return checkSrc(in.Rs2)
	case KindBr:
		if err := checkSrc(in.Rs1); err != nil {
			return err
		}
		return checkSrc(in.Rs2)
	case KindJmp, KindHalt:
	default:
		return fmt.Errorf("gpp: instruction %d: invalid kind %d", i, in.Kind)
	}
	return nil
}

// SetReg sets a register before (or between) runs.
func (c *Core) SetReg(r int, v isa.Word) { c.regs[r] = v }

// Reg returns a register's current value.
func (c *Core) Reg(r int) isa.Word { return c.regs[r] }

// LoadMem copies words into memory starting at addr.
func (c *Core) LoadMem(addr int, words []isa.Word) {
	copy(c.mem[addr:], words)
}

// Mem returns the word at addr.
func (c *Core) Mem(addr int) isa.Word { return c.mem[addr] }

// MemSlice returns a copy of memory [addr, addr+n).
func (c *Core) MemSlice(addr, n int) []isa.Word {
	out := make([]isa.Word, n)
	copy(out, c.mem[addr:addr+n])
	return out
}

// Stats returns the execution counters.
func (c *Core) Stats() Stats { return c.stats }

// Done reports whether the core has halted.
func (c *Core) Done() bool { return c.halted }

// Run executes until halt or the instruction budget is exhausted.
func (c *Core) Run(maxInsts int64) error {
	for n := int64(0); n < maxInsts; n++ {
		if c.halted {
			return nil
		}
		if err := c.step(); err != nil {
			return err
		}
	}
	if !c.halted {
		return fmt.Errorf("gpp: instruction budget %d exhausted at pc=%d", maxInsts, c.pc)
	}
	return nil
}

func (c *Core) src(s Src) isa.Word {
	if s.IsImm {
		return s.Imm
	}
	return c.regs[s.Reg]
}

func (c *Core) step() error {
	ci := &c.prog[c.pc]
	in := &ci.inst
	next := c.pc + 1
	cost := int64(1)
	switch in.Kind {
	case KindALU:
		var a, b isa.Word
		if in.Op.Arity() >= 1 {
			a = c.src(in.Rs1)
		}
		if in.Op.Arity() >= 2 {
			b = c.src(in.Rs2)
		}
		c.regs[in.Rd] = in.Op.Eval(a, b)
		if in.Op == isa.OpMul {
			cost = int64(c.cfg.MulLatency)
		}
		if in.Op == isa.OpHalt {
			c.halted = true
		}
	case KindLoad:
		addr := int(c.src(in.Rs1) + in.Off)
		if addr < 0 || addr >= len(c.mem) {
			return fmt.Errorf("gpp: pc=%d: load of address %d in %d-word memory", c.pc, addr, len(c.mem))
		}
		c.regs[in.Rd] = c.mem[addr]
		cost = int64(c.cfg.LoadLatency)
		c.stats.Loads++
	case KindStore:
		addr := int(c.src(in.Rs1) + in.Off)
		if addr < 0 || addr >= len(c.mem) {
			return fmt.Errorf("gpp: pc=%d: store to address %d in %d-word memory", c.pc, addr, len(c.mem))
		}
		c.mem[addr] = c.src(in.Rs2)
		c.stats.Stores++
	case KindBr:
		c.stats.Branches++
		if in.BrOp.eval(c.src(in.Rs1), c.src(in.Rs2)) {
			next = ci.target
			cost += int64(c.cfg.TakenPenalty)
			c.stats.Taken++
		}
	case KindJmp:
		next = ci.target
		cost += int64(c.cfg.TakenPenalty)
		c.stats.Taken++
	case KindHalt:
		c.halted = true
	}
	c.stats.Instructions++
	c.stats.Cycles += cost
	if next >= len(c.prog) {
		c.halted = true
	} else {
		c.pc = next
	}
	return nil
}

// Reset clears registers, program counter and statistics but leaves
// memory intact (callers reload what they need).
func (c *Core) Reset() {
	for i := range c.regs {
		c.regs[i] = 0
	}
	c.pc = 0
	c.halted = false
	c.stats = Stats{}
}
