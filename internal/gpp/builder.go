package gpp

import "tia/internal/isa"

// Builder accumulates instructions with a fluent, assembly-like API so
// hand-written kernels stay compact:
//
//	b := gpp.NewBuilder()
//	b.Li(1, 0)                   // i = 0
//	b.Label("loop")
//	b.Br(gpp.BrGEU, gpp.R(1), gpp.R(2), "done")
//	b.Lw(3, 1, 100)              // r3 = mem[r1+100]
//	...
//	prog := b.Program()
type Builder struct {
	insts []Inst
	label string // pending label for the next instruction
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Label attaches a label to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	b.label = name
	return b
}

func (b *Builder) emit(in Inst) *Builder {
	in.Label = b.label
	b.label = ""
	b.insts = append(b.insts, in)
	return b
}

// ALU emits rd = op(rs1, rs2).
func (b *Builder) ALU(op isa.Opcode, rd int, rs1, rs2 Src) *Builder {
	return b.emit(Inst{Kind: KindALU, Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Li emits rd = imm.
func (b *Builder) Li(rd int, v isa.Word) *Builder {
	return b.emit(Inst{Kind: KindALU, Op: isa.OpMov, Rd: rd, Rs1: I(v)})
}

// Mv emits rd = rs.
func (b *Builder) Mv(rd, rs int) *Builder {
	return b.emit(Inst{Kind: KindALU, Op: isa.OpMov, Rd: rd, Rs1: R(rs)})
}

// Add, Sub, Mul, And, Or, Xor, Shl, Shr emit the common two-source forms.
func (b *Builder) Add(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpAdd, rd, rs1, rs2) }
func (b *Builder) Sub(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpSub, rd, rs1, rs2) }
func (b *Builder) Mul(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpMul, rd, rs1, rs2) }
func (b *Builder) And(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpAnd, rd, rs1, rs2) }
func (b *Builder) Or(rd int, rs1, rs2 Src) *Builder   { return b.ALU(isa.OpOr, rd, rs1, rs2) }
func (b *Builder) Xor(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpXor, rd, rs1, rs2) }
func (b *Builder) Shl(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpShl, rd, rs1, rs2) }
func (b *Builder) Shr(rd int, rs1, rs2 Src) *Builder  { return b.ALU(isa.OpShr, rd, rs1, rs2) }
func (b *Builder) Rotr(rd int, rs1, rs2 Src) *Builder { return b.ALU(isa.OpRotr, rd, rs1, rs2) }

// Lw emits rd = mem[rbase + off].
func (b *Builder) Lw(rd, rbase int, off isa.Word) *Builder {
	return b.emit(Inst{Kind: KindLoad, Rd: rd, Rs1: R(rbase), Off: off})
}

// Sw emits mem[rbase + off] = rs.
func (b *Builder) Sw(rs, rbase int, off isa.Word) *Builder {
	return b.emit(Inst{Kind: KindStore, Rs1: R(rbase), Rs2: R(rs), Off: off})
}

// Br emits a conditional branch.
func (b *Builder) Br(op BrOp, x, y Src, target string) *Builder {
	return b.emit(Inst{Kind: KindBr, BrOp: op, Rs1: x, Rs2: y, Target: target})
}

// Jmp emits an unconditional branch.
func (b *Builder) Jmp(target string) *Builder {
	return b.emit(Inst{Kind: KindJmp, Target: target})
}

// Halt emits a halt.
func (b *Builder) Halt() *Builder {
	return b.emit(Inst{Kind: KindHalt})
}

// Program returns the accumulated instructions.
func (b *Builder) Program() []Inst { return b.insts }
