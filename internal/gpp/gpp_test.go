package gpp

import (
	"testing"

	"tia/internal/isa"
)

func TestSumLoopCostModel(t *testing.T) {
	// Sum mem[0..4] into r1.
	b := NewBuilder()
	b.Li(1, 0) // acc
	b.Li(2, 0) // i
	b.Li(3, 5) // n
	b.Label("loop")
	b.Br(BrGEU, R(2), R(3), "done")
	b.Lw(4, 2, 0)
	b.Add(1, R(1), R(4))
	b.Add(2, R(2), I(1))
	b.Jmp("loop")
	b.Label("done")
	b.Halt()

	c, err := New(DefaultConfig(64), b.Program())
	if err != nil {
		t.Fatal(err)
	}
	c.LoadMem(0, []isa.Word{1, 2, 3, 4, 5})
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 15 {
		t.Fatalf("sum = %d, want 15", c.Reg(1))
	}
	s := c.Stats()
	// 3 setup + 5*(br+lw+add+add+jmp) + br + halt = 30 instructions.
	if s.Instructions != 30 {
		t.Errorf("instructions = %d, want 30", s.Instructions)
	}
	// Cycles: 30 + 5 extra load cycles (LoadLatency 2) + 6 taken (5 jmp + final br).
	want := int64(30 + 5 + 6)
	if s.Cycles != want {
		t.Errorf("cycles = %d, want %d", s.Cycles, want)
	}
	if s.Loads != 5 || s.Branches != 6 || s.Taken != 6 {
		t.Errorf("loads=%d branches=%d taken=%d", s.Loads, s.Branches, s.Taken)
	}
}

func TestMulLatency(t *testing.T) {
	b := NewBuilder()
	b.Mul(1, I(6), I(7))
	b.Halt()
	cfg := DefaultConfig(8)
	cfg.MulLatency = 5
	c, err := New(cfg, b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 42 {
		t.Fatalf("r1 = %d", c.Reg(1))
	}
	if c.Stats().Cycles != 6 { // 5 for mul + 1 for halt
		t.Fatalf("cycles = %d, want 6", c.Stats().Cycles)
	}
}

func TestStoreAndMemAccessors(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 42)
	b.Li(2, 3)
	b.Sw(1, 2, 10) // mem[13] = 42
	b.Halt()
	c, err := New(DefaultConfig(32), b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Mem(13) != 42 {
		t.Fatalf("mem[13] = %d", c.Mem(13))
	}
	sl := c.MemSlice(12, 3)
	if sl[1] != 42 {
		t.Fatalf("MemSlice = %v", sl)
	}
}

func TestMemoryFaults(t *testing.T) {
	b := NewBuilder()
	b.Lw(1, 0, 999)
	b.Halt()
	c, err := New(DefaultConfig(8), b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err == nil {
		t.Fatal("out-of-range load not reported")
	}
	b2 := NewBuilder()
	b2.Li(1, 1)
	b2.Sw(1, 1, 999)
	b2.Halt()
	c2, err := New(DefaultConfig(8), b2.Program())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(100); err == nil {
		t.Fatal("out-of-range store not reported")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := NewBuilder()
	b.Label("l")
	b.Jmp("l")
	c, err := New(DefaultConfig(8), b.Program())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10); err == nil {
		t.Fatal("infinite loop not caught by budget")
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		prog []Inst
	}{
		{"empty", nil},
		{"unknown target", []Inst{{Kind: KindJmp, Target: "x"}}},
		{"dup label", []Inst{{Label: "a", Kind: KindHalt}, {Label: "a", Kind: KindHalt}}},
		{"bad reg", []Inst{{Kind: KindALU, Op: isa.OpMov, Rd: 99, Rs1: I(0)}}},
		{"bad src reg", []Inst{{Kind: KindALU, Op: isa.OpAdd, Rd: 0, Rs1: R(99), Rs2: I(0)}}},
	}
	for _, c := range cases {
		if _, err := New(DefaultConfig(8), c.prog); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestResetKeepsMemory(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 7)
	b.Halt()
	c, err := New(DefaultConfig(8), b.Program())
	if err != nil {
		t.Fatal(err)
	}
	c.LoadMem(0, []isa.Word{5})
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Reg(1) != 0 || c.Done() || c.Stats().Instructions != 0 {
		t.Fatal("Reset incomplete")
	}
	if c.Mem(0) != 5 {
		t.Fatal("Reset cleared memory")
	}
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 7 {
		t.Fatal("rerun failed")
	}
}

func TestFallOffEndHalts(t *testing.T) {
	c, err := New(DefaultConfig(8), []Inst{{Kind: KindALU, Op: isa.OpNop}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if !c.Done() {
		t.Fatal("did not halt")
	}
}

func TestBranchOps(t *testing.T) {
	cases := []struct {
		op   BrOp
		x, y isa.Word
		want bool
	}{
		{BrEQ, 1, 1, true}, {BrEQ, 1, 2, false},
		{BrNE, 1, 2, true},
		{BrLTS, 0xFFFFFFFF, 0, true}, // -1 < 0
		{BrGES, 0, 0xFFFFFFFF, true},
		{BrLTU, 0xFFFFFFFF, 0, false},
		{BrGEU, 0xFFFFFFFF, 0, true},
	}
	for _, c := range cases {
		if got := c.op.eval(c.x, c.y); got != c.want {
			t.Errorf("brop %d (%#x,%#x) = %v, want %v", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestBuilderHelpersAndStrings(t *testing.T) {
	b := NewBuilder()
	b.Mv(1, 2)
	b.Sub(1, R(1), I(1))
	b.And(1, R(1), I(0xF))
	b.Or(1, R(1), I(1))
	b.Xor(1, R(1), R(2))
	b.Shl(1, R(1), I(2))
	b.Shr(1, R(1), I(1))
	b.Rotr(1, R(1), I(3))
	b.Halt()
	prog := b.Program()
	if len(prog) != 9 {
		t.Fatalf("built %d instructions", len(prog))
	}
	c, err := New(DefaultConfig(8), prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// String forms parse back through the asm dialect's expectations.
	wantPrefixes := []string{"mov r1, r2", "sub r1", "and r1", "or r1", "xor r1", "shl r1", "shr r1", "rotr r1", "halt"}
	for i, in := range prog {
		if got := in.String(); len(got) < len(wantPrefixes[i]) || got[:len(wantPrefixes[i])] != wantPrefixes[i] {
			t.Errorf("inst %d String() = %q, want prefix %q", i, got, wantPrefixes[i])
		}
	}
	for op := BrEQ; op <= BrGEU; op++ {
		back, ok := BrOpByName(op.String())
		if !ok || back != op {
			t.Errorf("BrOp round trip failed for %v", op)
		}
	}
	lw := Inst{Kind: KindLoad, Rd: 3, Rs1: R(4), Off: 7}
	if lw.String() != "lw r3, r4, #7" {
		t.Errorf("lw string %q", lw.String())
	}
	sw := Inst{Kind: KindStore, Rs2: R(3), Rs1: R(4), Off: 7}
	if sw.String() != "sw r3, r4, #7" {
		t.Errorf("sw string %q", sw.String())
	}
}
