package gpp

import (
	"testing"

	"tia/internal/isa"
)

// BenchmarkCoreStep measures instruction throughput on a small live loop.
func BenchmarkCoreStep(b *testing.B) {
	bld := NewBuilder()
	bld.Li(1, 0)
	bld.Label("loop")
	bld.Lw(2, 1, 0)
	bld.Add(3, R(3), R(2))
	bld.Add(1, R(1), I(1))
	bld.And(1, R(1), I(63))
	bld.Jmp("loop")
	core, err := New(DefaultConfig(64), bld.Program())
	if err != nil {
		b.Fatal(err)
	}
	core.LoadMem(0, make([]isa.Word, 64))
	// The loop is infinite by design; the budget error marks completion.
	_ = core.Run(int64(b.N) + 10)
	if core.Stats().Instructions < int64(b.N) {
		b.Fatalf("only %d instructions executed", core.Stats().Instructions)
	}
}
