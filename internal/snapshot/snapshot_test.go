package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var e Encoder
	e.U64(0)
	e.U64(1)
	e.U64(1<<63 + 17)
	e.I64(-1)
	e.I64(1 << 40)
	e.Int(-12345)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{0xde, 0xad})
	e.Bytes(nil)
	e.String("gcd")
	e.String("")

	d := NewDecoder(e.Data())
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"u64 zero", d.U64(), uint64(0)},
		{"u64 one", d.U64(), uint64(1)},
		{"u64 big", d.U64(), uint64(1<<63 + 17)},
		{"i64 neg", d.I64(), int64(-1)},
		{"i64 big", d.I64(), int64(1 << 40)},
		{"int neg", d.Int(), -12345},
		{"bool true", d.Bool(), true},
		{"bool false", d.Bool(), false},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
	if b := d.Bytes(); !bytes.Equal(b, []byte{0xde, 0xad}) {
		t.Errorf("bytes: got %x", b)
	}
	if b := d.Bytes(); len(b) != 0 {
		t.Errorf("empty bytes: got %x", b)
	}
	if s := d.String(); s != "gcd" {
		t.Errorf("string: got %q", s)
	}
	if s := d.String(); s != "" {
		t.Errorf("empty string: got %q", s)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode err: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining: %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	// A bool byte of 7 poisons the decoder; everything after returns zero
	// values and the first error is preserved.
	d := NewDecoder([]byte{7, 42})
	if d.Bool() {
		t.Fatal("bad bool decoded as true")
	}
	first := d.Err()
	if first == nil {
		t.Fatal("expected error from bad bool byte")
	}
	if v := d.U64(); v != 0 {
		t.Fatalf("poisoned U64 = %d", v)
	}
	if d.Err() != first {
		t.Fatalf("error was overwritten: %v", d.Err())
	}
}

func TestDecoderBoundsLengths(t *testing.T) {
	var e Encoder
	e.U64(1 << 40) // absurd length prefix, no payload
	d := NewDecoder(e.Data())
	if b := d.Bytes(); b != nil {
		t.Fatalf("oversized Bytes returned %d bytes", len(b))
	}
	if d.Err() == nil {
		t.Fatal("oversized length must error")
	}

	var e2 Encoder
	e2.Int(1 << 40)
	d2 := NewDecoder(e2.Data())
	if n := d2.Count(); n != 0 {
		t.Fatalf("oversized Count returned %d", n)
	}
	if d2.Err() == nil {
		t.Fatal("oversized count must error")
	}

	var e3 Encoder
	e3.Int(-4)
	d3 := NewDecoder(e3.Data())
	if n := d3.Count(); n != 0 {
		t.Fatalf("negative Count returned %d", n)
	}
	if d3.Err() == nil {
		t.Fatal("negative count must error")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	var body Encoder
	body.String("pe[0][0]")
	body.U64(99)
	enc := Encode(Header{Fingerprint: "fp-abc", Cycle: 1234}, body.Data())

	h, d, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Version != Version || h.Fingerprint != "fp-abc" || h.Cycle != 1234 {
		t.Fatalf("header: %+v", h)
	}
	if s := d.String(); s != "pe[0][0]" {
		t.Fatalf("body string: %q", s)
	}
	if v := d.U64(); v != 99 {
		t.Fatalf("body u64: %d", v)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("body: err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	enc := Encode(Header{Fingerprint: "fp", Cycle: 7}, []byte("statestate"))

	cases := []struct {
		name   string
		mangle func([]byte) []byte
		substr string
	}{
		{"empty", func(b []byte) []byte { return nil }, "shorter"},
		{"short", func(b []byte) []byte { return b[:10] }, "shorter"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"flipped body bit", func(b []byte) []byte { b[len(Magic)+4] ^= 1; return b }, "digest"},
		{"flipped digest bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "digest"},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }, "digest"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xcc) }, "digest"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mangled := c.mangle(append([]byte(nil), enc...))
			_, _, err := Decode(mangled)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			if !strings.Contains(err.Error(), c.substr) {
				t.Fatalf("error %q does not mention %q", err, c.substr)
			}
		})
	}
}

func TestContainerRejectsUnknownVersion(t *testing.T) {
	// Hand-build a container with version 99 and a valid digest: only the
	// version check can reject it.
	var e Encoder
	e.buf = append(e.buf, Magic...)
	e.U64(99)
	e.String("fp")
	e.I64(0)
	e.Bytes(nil)
	framed := e.Data()
	sumOver := append([]byte(nil), framed...)
	enc := appendDigest(sumOver)
	_, _, err := Decode(enc)
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// appendDigest frames raw bytes with the container digest, for building
// deliberately odd-but-digest-valid containers in tests.
func appendDigest(framed []byte) []byte {
	sum := sha256.Sum256(framed)
	return append(framed, sum[:]...)
}

func TestHeaderDigestCoversFingerprint(t *testing.T) {
	// Tampering with the fingerprint in-place must be caught by the
	// digest, not silently accepted as a different program's snapshot.
	enc := Encode(Header{Fingerprint: "AAAA", Cycle: 1}, []byte("s"))
	i := bytes.Index(enc, []byte("AAAA"))
	if i < 0 {
		t.Fatal("fingerprint not found in encoding")
	}
	enc[i] = 'B'
	if _, _, err := Decode(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered fingerprint accepted: %v", err)
	}
}
