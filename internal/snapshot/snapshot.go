// Package snapshot implements the versioned, self-describing binary
// encoding that deterministic checkpoint/restore is built on.
//
// The fabric's architectural state is small and explicit — channel ring
// buffers, in-flight wire tokens, register files, predicate bitmaps,
// program counters, PRNG positions — which is exactly what makes precise
// checkpointing tractable for a latency-insensitive spatial array. This
// package provides two layers:
//
//   - Encoder/Decoder: varint-based primitive serialization. The Decoder
//     carries a sticky error and is total: malformed or truncated input
//     yields an error from Err, never a panic and never an oversized
//     allocation (length prefixes are bounds-checked against the
//     remaining input before any allocation).
//
//   - the container (Encode/Decode): a framed snapshot file with a magic
//     string, a format version, the assembled-form fingerprint of the
//     program the state belongs to, the fabric cycle the state was
//     captured at, and a SHA-256 digest over everything. Decode verifies
//     the digest before handing out a single byte of body, so a flipped
//     bit anywhere in a snapshot is detected rather than restored.
//
// A snapshot can only be restored onto the identical program: the
// fingerprint in the header is checked against the fingerprint of the
// fabric being restored (see fabric.Restore).
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a snapshot container; the trailing byte doubles as a
// coarse format generation (bump it only for incompatible reframings).
const Magic = "TIASNAP\x01"

// Version is the current container format version. Decoders reject
// versions they do not know; state layout changes bump it.
const Version = 1

// ErrCorrupt wraps every container-level decode failure: bad magic,
// unknown version, truncated input, or digest mismatch.
var ErrCorrupt = errors.New("snapshot corrupt")

// Encoder serializes primitives into a growing buffer. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zigzag) varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Data returns the encoded bytes. The slice aliases the encoder's
// buffer; further appends may reallocate but never mutate returned data.
func (e *Encoder) Data() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Decoder reads primitives back. All methods are total: after the first
// failure the decoder is poisoned (Err reports it) and every subsequent
// read returns a zero value. Construct with NewDecoder.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps raw encoded bytes.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// I64 reads a signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads one byte as a boolean; any value other than 0 or 1 is an
// error (it would mean the stream is misframed).
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("truncated bool")
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		d.fail("bad bool byte %d", b)
		return false
	}
	return b == 1
}

// Bytes reads a length-prefixed byte string. The returned slice aliases
// the input. Lengths beyond the remaining input are an error before any
// slicing happens.
func (d *Decoder) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("byte string length %d exceeds remaining %d", n, d.Remaining())
		return nil
	}
	b := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Count reads a collection length written with Int and bounds it by the
// remaining input (every element costs at least one encoded byte), so a
// corrupted length can never drive an oversized allocation.
func (d *Decoder) Count() int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.fail("negative collection length %d", n)
		return 0
	}
	if n > int64(d.Remaining()) {
		d.fail("collection length %d exceeds remaining %d bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// Header is the container's self-description.
type Header struct {
	// Version is the container format version (see Version).
	Version uint16
	// Fingerprint is the assembled-form fingerprint of the program whose
	// state the snapshot holds; restore refuses any other program.
	Fingerprint string
	// Cycle is the fabric cycle the state was captured at.
	Cycle int64
}

// Encode frames a header and body into a self-describing snapshot:
//
//	magic | version | fingerprint | cycle | body | sha256(all preceding)
//
// The digest covers the header fields too, so tampering with the
// fingerprint or cycle is as detectable as tampering with state.
func Encode(h Header, body []byte) []byte {
	e := &Encoder{buf: make([]byte, 0, len(Magic)+len(h.Fingerprint)+len(body)+64)}
	e.buf = append(e.buf, Magic...)
	e.U64(uint64(Version))
	e.String(h.Fingerprint)
	e.I64(h.Cycle)
	e.Bytes(body)
	sum := sha256.Sum256(e.buf)
	e.buf = append(e.buf, sum[:]...)
	return e.buf
}

// Decode verifies a container and returns its header and a decoder over
// the body. Every failure wraps ErrCorrupt; malformed input never
// panics (the fuzz harness holds it to that).
func Decode(data []byte) (Header, *Decoder, error) {
	h, body, err := verify(data)
	if err != nil {
		return h, nil, err
	}
	return h, NewDecoder(body), nil
}

// Verify runs the full container integrity check — magic, digest,
// version, framing — without exposing the body. It is the pre-check for
// code that relays snapshots it does not itself restore (the fleet
// coordinator's migration stash quarantines anything Verify rejects
// rather than shipping damage to a worker). Every failure wraps
// ErrCorrupt, exactly as Decode's would.
func Verify(data []byte) (Header, error) {
	h, _, err := verify(data)
	return h, err
}

// verify is the shared container check behind Decode and Verify: it
// validates magic and digest before touching a byte of payload, then
// parses the header and bounds the body.
func verify(data []byte) (Header, []byte, error) {
	var h Header
	if len(data) < len(Magic)+sha256.Size {
		return h, nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(Magic)], []byte(Magic)) {
		return h, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	framed, digest := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(framed)
	if !bytes.Equal(sum[:], digest) {
		return h, nil, fmt.Errorf("%w: state digest mismatch", ErrCorrupt)
	}
	d := NewDecoder(framed[len(Magic):])
	ver := d.U64()
	if d.err == nil && ver != Version {
		return h, nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, ver, Version)
	}
	h.Version = uint16(ver)
	h.Fingerprint = d.String()
	h.Cycle = d.I64()
	body := d.Bytes()
	if d.err != nil {
		return h, nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if d.Remaining() != 0 {
		return h, nil, fmt.Errorf("%w: %d trailing bytes after body", ErrCorrupt, d.Remaining())
	}
	return h, body, nil
}
