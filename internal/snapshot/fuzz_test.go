package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecode holds the snapshot decoder to its totality contract:
// arbitrary bytes either decode as a container or return an error —
// never a panic, and never an allocation driven by a lied-about length.
// When decode succeeds, the body decoder is additionally dragged through
// every primitive reader until it errors or runs dry, so the sticky
// error path is fuzzed too.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	var body Encoder
	body.String("pe[0][0]")
	body.U64(42)
	body.I64(-7)
	body.Bool(true)
	valid := Encode(Header{Fingerprint: "fp-fuzz", Cycle: 123}, body.Data())
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	mangled := append([]byte(nil), valid...)
	mangled[len(Magic)+3] ^= 0x40
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, d, err := Decode(data)
		if err != nil {
			if d != nil {
				t.Fatalf("error %v but non-nil decoder", err)
			}
			return
		}
		if h.Version != Version {
			t.Fatalf("accepted unknown version %d", h.Version)
		}
		// Exhaust the body through a rotation of readers; the decoder
		// must terminate (every successful read consumes >= 1 byte, and
		// errors are sticky).
		for i := 0; d.Err() == nil && d.Remaining() > 0; i++ {
			switch i % 5 {
			case 0:
				d.U64()
			case 1:
				d.I64()
			case 2:
				d.Bool()
			case 3:
				d.Bytes()
			case 4:
				_ = d.String()
			}
		}
	})
}

// FuzzRoundTrip checks that whatever the container encodes, it decodes
// back verbatim.
func FuzzRoundTrip(f *testing.F) {
	f.Add("fp", int64(0), []byte(nil))
	f.Add("", int64(-1), []byte{1, 2, 3})
	f.Add("kernel/gcd@deadbeef", int64(1<<40), bytes.Repeat([]byte{0xaa}, 300))
	f.Fuzz(func(t *testing.T, fp string, cycle int64, body []byte) {
		enc := Encode(Header{Fingerprint: fp, Cycle: cycle}, body)
		h, d, err := Decode(enc)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if h.Fingerprint != fp || h.Cycle != cycle {
			t.Fatalf("header mismatch: %+v", h)
		}
		got := d.data
		if !bytes.Equal(got, body) {
			t.Fatalf("body mismatch: %x vs %x", got, body)
		}
	})
}
