GO ?= go

.PHONY: all build test race vet bench-smoke bench bench-json alloc-gate shard-smoke fault-smoke snapshot-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark: catches bit-rot in bench harnesses
# without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full experiment benchmarks (the paper tables come from cmd/tiabench;
# these are the perf-tracking targets).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s .

# Perf-trajectory report: min-of-N wall-clock per kernel plus the
# allocation-gated micro-benchmarks, written as BENCH_<date>.json. The
# committed BENCH_*.json files record how the simulator's speed moves
# over time; regenerate and commit alongside performance-affecting PRs.
bench-json:
	$(GO) run ./cmd/tiabench -json-out BENCH_$$(date +%F).json

# Zero-allocation gates on the per-cycle hot paths (fabric step loop,
# trigger classification, channel reset/restore reuse): any regression
# to >0 allocs/op fails these tests, not just a benchmark number.
alloc-gate:
	$(GO) test -run 'AllocationFree|AllocationBounded|ReusesCapacity' -count=1 ./internal/fabric ./internal/pe ./internal/channel

# Sharded-stepping differential smoke under the race detector: random
# topologies across shard counts plus one kernel's three-way
# dense/event/sharded snapshot differential.
shard-smoke:
	$(GO) test -race -run 'TestSharded|TestShardCount|TestSnapshotRestoreDifferential$$/mergesort/sharded' -count=1 ./internal/fabric ./internal/workloads

# Seeded fault-campaign smoke: one kernel, fixed seed, exact expected
# masked/detected/sdc/hang taxonomy (see internal/core/resilience_test.go).
fault-smoke:
	$(GO) test -run 'TestFaultCampaignSmoke' -count=1 ./internal/core

# Checkpoint/restore differential smoke under the race detector: two
# kernels on both steppers, run-to-completion vs snapshot-then-restore
# must be byte-identical (see internal/workloads/snapshot_differential_test.go).
snapshot-smoke:
	$(GO) test -race -run 'TestSnapshotRestoreDifferential$$/(dmm|mergesort)/' -count=1 ./internal/workloads

check: vet race bench-smoke alloc-gate shard-smoke fault-smoke snapshot-smoke
