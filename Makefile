GO ?= go

.PHONY: all build test race vet bench-smoke bench fault-smoke snapshot-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark: catches bit-rot in bench harnesses
# without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full experiment benchmarks (the paper tables come from cmd/tiabench;
# these are the perf-tracking targets).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s .

# Seeded fault-campaign smoke: one kernel, fixed seed, exact expected
# masked/detected/sdc/hang taxonomy (see internal/core/resilience_test.go).
fault-smoke:
	$(GO) test -run 'TestFaultCampaignSmoke' -count=1 ./internal/core

# Checkpoint/restore differential smoke under the race detector: two
# kernels on both steppers, run-to-completion vs snapshot-then-restore
# must be byte-identical (see internal/workloads/snapshot_differential_test.go).
snapshot-smoke:
	$(GO) test -race -run 'TestSnapshotRestoreDifferential$$/(dmm|mergesort)/' -count=1 ./internal/workloads

check: vet race bench-smoke fault-smoke snapshot-smoke
