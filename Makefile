GO ?= go

.PHONY: all build test race vet bench-smoke bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark: catches bit-rot in bench harnesses
# without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full experiment benchmarks (the paper tables come from cmd/tiabench;
# these are the perf-tracking targets).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s .

check: vet race bench-smoke
