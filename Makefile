GO ?= go

.PHONY: all build test race vet bench-smoke bench bench-json bench-compare alloc-gate shard-smoke fault-smoke batch-smoke snapshot-smoke compile-smoke fleet-smoke chaos-smoke fuzz-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark: catches bit-rot in bench harnesses
# without paying for a real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full experiment benchmarks (the paper tables come from cmd/tiabench;
# these are the perf-tracking targets).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s .

# Perf-trajectory report: min-of-N wall-clock per kernel plus the
# allocation-gated micro-benchmarks, written as BENCH_<date>.json. The
# committed BENCH_*.json files record how the simulator's speed moves
# over time; regenerate and commit alongside performance-affecting PRs.
# An existing same-date baseline is never clobbered silently — a
# committed trajectory point is history, overwriting it rewrites the
# record. Pass FORCE=1 to regenerate today's file deliberately.
bench-json:
	@if [ -e BENCH_$$(date +%F).json ] && [ "$(FORCE)" != "1" ]; then \
		echo "bench-json: BENCH_$$(date +%F).json already exists; rerun with FORCE=1 to overwrite"; \
		exit 1; \
	fi
	$(GO) run ./cmd/tiabench -json-out BENCH_$$(date +%F).json

# Compare a fresh bench run (written to a scratch file, not committed)
# against the newest committed BENCH_*.json: per-kernel wall-clock
# deltas, non-zero exit if any kernel regressed >10%. CI's bench job
# runs this so perf regressions fail loudly against the trajectory.
bench-compare:
	$(GO) run ./cmd/tiabench -json-out /tmp/bench-fresh.json \
		-compare "$$(ls BENCH_*.json | sort | tail -1)"

# Zero-allocation gates on the per-cycle hot paths (fabric step loop —
# interpreted and compiled, dense and event — trigger classification,
# channel reset/restore reuse): any regression to >0 allocs/op fails
# these tests, not just a benchmark number. One-time compilation cost
# is gated separately as a bounded constant.
alloc-gate:
	$(GO) test -run 'AllocationFree|AllocationBounded|ReusesCapacity' -count=1 ./internal/fabric ./internal/pe ./internal/channel ./internal/batchrun

# Sharded-stepping differential smoke under the race detector: random
# topologies across shard counts plus one kernel's three-way
# dense/event/sharded snapshot differential.
shard-smoke:
	$(GO) test -race -run 'TestSharded|TestShardCount|TestSnapshotRestoreDifferential$$/mergesort/sharded' -count=1 ./internal/fabric ./internal/workloads

# Seeded fault-campaign smoke: one kernel, fixed seed, exact expected
# masked/detected/sdc/hang taxonomy (see internal/core/resilience_test.go).
fault-smoke:
	$(GO) test -run 'TestFaultCampaignSmoke' -count=1 ./internal/core

# Batched-campaign differential smoke under the race detector: the
# structure-of-arrays batched stepper (internal/batchrun) must produce
# campaign reports bit-identical to the serial runner for every kernel
# (data + timing plans), with lane eviction and lane bookkeeping
# contracts riding along (see internal/core/batch_test.go).
batch-smoke:
	$(GO) test -race -count=1 ./internal/batchrun
	$(GO) test -race -run 'TestBatchedCampaign|TestBatchedTiming' -count=1 ./internal/core

# Checkpoint/restore differential smoke under the race detector: two
# kernels on both steppers, run-to-completion vs snapshot-then-restore
# must be byte-identical (see internal/workloads/snapshot_differential_test.go).
snapshot-smoke:
	$(GO) test -race -run 'TestSnapshotRestoreDifferential$$/(dmm|mergesort)/' -count=1 ./internal/workloads

# Compiled-stepping differential smoke under the race detector: every
# kernel's compiled arm against the interpreted oracle, the compiled
# snapshot/restore and zero-rate fault-plan differentials, the quick
# random-topology equivalence sweep, and the service-level cache
# contracts (compiled/interpreted result sharing, plan sharing across
# cosmetic sources).
compile-smoke:
	$(GO) test -race -run 'TestSchedulerSteppingDifferential/.*/compiled|TestSnapshotRestoreDifferential$$/(dmm|mergesort)/compiled|TestZeroRateFaultPlanDifferential/.*/compiled|TestSchedulerEquivalenceQuick|TestCompiled' -count=1 ./internal/workloads ./internal/service

# Loopback multi-process fleet e2e: three real tiad worker processes
# plus a coordinator — cache-affinity routing across resubmission,
# SIGKILL mid-job with snapshot migration to a survivor (byte-identical
# completion), and a 64-seed batch fanned out with exactly-once
# streaming delivery (see internal/fleet/e2e_test.go).
fleet-smoke:
	$(GO) test -race -run 'TestFleetE2E' -count=1 ./internal/fleet

# Deterministic chaos soak under the race detector: the seeded fault
# harness's own replay contracts (internal/chaos) plus the fleet-level
# scenarios — partitions, corrupt snapshots, worker crash-restart —
# where every accepted job reaches exactly one terminal state, results
# match a chaos-free reference byte for byte, and a same-seed rerun
# injects the identical fault log. The breaker, stash, journal and
# goroutine-leak gates ride along (see internal/fleet/chaos_soak_test.go).
chaos-smoke:
	$(GO) test -race -count=1 ./internal/chaos
	$(GO) test -race -run 'TestChaosSoak|TestBreaker|TestStaleHeartbeatSkew|TestRegistryConcurrentProbes|TestStash|TestCoordinatorJournal|TestCoordinatorShutdownGoroutines' -count=1 ./internal/fleet

# Generative differential fuzz smoke: 60 seconds of FuzzSimulate —
# seeded random netlists (plus hostile mutations) assembled, validated
# and run on all four stepping backends to bit-identical results, with a
# mid-run snapshot/restore arm (see internal/gen). The committed corpus
# also replays as an ordinary test in `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzSimulate' -fuzztime 60s ./internal/gen

check: vet race bench-smoke alloc-gate shard-smoke fault-smoke batch-smoke snapshot-smoke compile-smoke fleet-smoke chaos-smoke fuzz-smoke
