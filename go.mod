module tia

go 1.22
