// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each BenchmarkEn_* runs
// the corresponding experiment and reports the headline quantity as a
// custom metric, so `go test -bench=.` reproduces the paper's numbers:
//
//	E1  geomean-speedup        (paper: 2.0X over the PC spatial baseline)
//	E2  static/dynamic-red     (paper: 62% / 64% on the critical path)
//	E3  perf-per-area-vs-gpp   (paper: 8X)
//	E6  trigger requirements   (paper: sensitivity to PE resources)
//	E7  channel-depth sweep
//	E8  latency / scheduler ablations
//
// The BenchmarkSim_* benches additionally measure the simulator itself
// (simulated PE-cycles per host-second) for each kernel.
package tia_test

import (
	"sync"
	"testing"

	"tia/internal/core"
	"tia/internal/workloads"
)

var benchParams = workloads.Params{Seed: 1}

// suiteCache shares one full-suite measurement across benchmarks.
var suiteCache struct {
	once sync.Once
	rows []*core.Row
	err  error
}

func suiteRows(b *testing.B) []*core.Row {
	suiteCache.once.Do(func() {
		suiteCache.rows, suiteCache.err = core.RunSuite(benchParams)
	})
	if suiteCache.err != nil {
		b.Fatal(suiteCache.err)
	}
	return suiteCache.rows
}

func BenchmarkE1_SpeedupVsPC(b *testing.B) {
	rows := suiteRows(b)
	for i := 0; i < b.N; i++ {
		_ = core.Summarize(rows)
	}
	s := core.Summarize(rows)
	b.ReportMetric(s.GeomeanSpeedup, "geomean-speedup")
	b.ReportMetric(s.GeomeanSpeedupIdeal, "geomean-speedup-vs-ideal-pc")
}

func BenchmarkE2_CriticalPathInstructions(b *testing.B) {
	rows := suiteRows(b)
	var bracket *core.MergeBracket
	for i := 0; i < b.N; i++ {
		var err error
		bracket, err = core.RunMergeBracket(256, benchParams.Seed)
		if err != nil {
			b.Fatal(err)
		}
	}
	s := core.Summarize(rows)
	b.ReportMetric(100*s.MeanStaticReduction, "mean-static-reduction-%")
	b.ReportMetric(100*s.MeanDynamicReduction, "mean-dynamic-reduction-%")
	var ps, pd float64
	n := 0
	for _, r := range rows {
		if r.PlainStatic > 0 {
			ps += 1 - float64(r.TIAStatic)/float64(r.PlainStatic)
			pd += 1 - float64(r.TIADynamic)/float64(r.PlainDynamic)
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(100*ps/float64(n), "mean-static-reduction-vs-plain-%")
		b.ReportMetric(100*pd/float64(n), "mean-dynamic-reduction-vs-plain-%")
	}
	b.ReportMetric(100*(1-float64(bracket.TIAStatic)/float64(bracket.PlainStatic)), "merge-static-reduction-vs-plain-%")
	b.ReportMetric(100*(1-float64(bracket.TIADynamic)/float64(bracket.PlainDynamic)), "merge-dynamic-reduction-vs-plain-%")
}

func BenchmarkE3_AreaNormalizedVsGPP(b *testing.B) {
	rows := suiteRows(b)
	for i := 0; i < b.N; i++ {
		_ = core.Summarize(rows)
	}
	s := core.Summarize(rows)
	b.ReportMetric(s.GeomeanAreaNorm, "perf-per-area-vs-gpp")
}

func BenchmarkE5_WorkloadTable(b *testing.B) {
	rows := suiteRows(b)
	var occ float64
	for i := 0; i < b.N; i++ {
		occ = 0
		n := 0
		for _, r := range rows {
			for _, u := range r.TIAUtil {
				occ += u.Occupancy
				n++
			}
		}
		occ /= float64(n)
	}
	b.ReportMetric(100*occ, "mean-pe-occupancy-%")
}

func BenchmarkE6_TriggerCountSensitivity(b *testing.B) {
	var reqs []core.Requirements
	for i := 0; i < b.N; i++ {
		var err error
		reqs, err = core.SuiteRequirements(benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	fits := 0
	maxInsts, maxPreds := 0, 0
	for _, r := range reqs {
		if r.MaxInsts <= 16 && r.MaxPreds <= 8 {
			fits++
		}
		if r.MaxInsts > maxInsts {
			maxInsts = r.MaxInsts
		}
		if r.MaxPreds > maxPreds {
			maxPreds = r.MaxPreds
		}
	}
	b.ReportMetric(float64(fits), "kernels-fitting-16-triggers-8-preds")
	b.ReportMetric(float64(maxInsts), "max-triggers-needed")
	b.ReportMetric(float64(maxPreds), "max-preds-needed")
}

func BenchmarkE7_PredAndDepthSensitivity(b *testing.B) {
	spec, err := workloads.ByName("mergesort")
	if err != nil {
		b.Fatal(err)
	}
	var pts []core.SweepPoint
	for i := 0; i < b.N; i++ {
		pts, err = core.DepthSweep(spec, benchParams, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(float64(p.Cycles), "mergesort-cycles-"+p.Label)
	}
}

func BenchmarkE8_Ablations(b *testing.B) {
	spec, err := workloads.ByName("graph500")
	if err != nil {
		b.Fatal(err)
	}
	var lat []core.SweepPoint
	var prio, rr int64
	for i := 0; i < b.N; i++ {
		lat, err = core.LatencySweep(spec, benchParams, []int{0, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
		prio, rr, err = core.PolicyComparison(spec, benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range lat {
		b.ReportMetric(float64(p.Cycles), "graph500-cycles-"+p.Label)
	}
	b.ReportMetric(float64(rr)/float64(prio), "roundrobin-vs-priority-slowdown")
}

// BenchmarkSim measures raw simulator throughput per kernel: simulated
// fabric cycles per host second.
func BenchmarkSim(b *testing.B) {
	for _, spec := range workloads.All() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			p := spec.Normalize(benchParams)
			var simulated int64
			for i := 0; i < b.N; i++ {
				inst, err := spec.BuildTIA(p)
				if err != nil {
					b.Fatal(err)
				}
				res, err := inst.Fabric.Run(spec.MaxCycles(p))
				if err != nil {
					b.Fatal(err)
				}
				simulated += res.Cycles
			}
			b.ReportMetric(float64(simulated)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}
