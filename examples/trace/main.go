// Trace demonstrates the execution-tracing tooling: run the merge kernel
// with a recorder attached, render the first cycles as a waterfall
// timeline (one column per PE, one row per cycle), print the
// per-instruction fire histogram, and emit a Chrome trace-event JSON file
// that chrome://tracing or Perfetto can open.
package main

import (
	"fmt"
	"log"
	"os"

	"tia"
)

func main() {
	f := tia.NewFabric(tia.DefaultFabricConfig())
	a := tia.NewWordSource("a", []tia.Word{1, 3, 5, 9}, true)
	b := tia.NewWordSource("b", []tia.Word{2, 4, 6, 7}, true)
	m, err := tia.NewPE("merge", tia.DefaultConfig(), tia.MergeProgram())
	if err != nil {
		log.Fatal(err)
	}
	out := tia.NewSink("out")
	f.Add(a)
	f.Add(b)
	f.Add(m)
	f.Add(out)
	f.Wire(a, 0, m, 0)
	f.Wire(b, 0, m, 1)
	f.Wire(m, 0, out, 0)

	rec := tia.NewTraceRecorder(0)
	rec.Attach(m)

	res, err := f.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %v in %d cycles\n\n", out.Words(), res.Cycles)

	fmt.Println("timeline (what fired when):")
	rec.WriteTimeline(os.Stdout, 0, res.Cycles)

	fmt.Println("\nfire histogram:")
	for _, fc := range rec.Histogram() {
		fmt.Printf("  %-8s %-8s %d\n", fc.PE, fc.Label, fc.Count)
	}

	path := "merge-trace.json"
	file, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()
	if err := rec.WriteChromeJSON(file); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (open in chrome://tracing or Perfetto)\n", path)
}
