// Stringsearch runs a KMP automaton on the fabric, written entirely in
// the textual netlist/assembly front end: the pattern's DFA lives in a
// scratchpad, the text streams through a single triggered PE, and match
// positions stream out. The PE latches the next character while the
// previous table lookup is still in flight — reactivity a program counter
// cannot express.
package main

import (
	"fmt"
	"log"
	"strings"

	"tia"
)

// Pattern "aba" over alphabet {a=0, b=1}; the DFA below is the KMP
// automaton with rows premultiplied by the alphabet size so a lookup is a
// single add. Accepting value: 3*2 = 6.
const netlist = `
// text: abaabababba  (a=0 b=1), EOD-terminated
source text : 0 1 0 0 1 0 1 0 1 1 0 eod
sink matches
scratchpad dfa 8 : 2 0 2 4 6 0 2 4

pe kmp
in t m
out rq o
reg j c i
reg acc = 6
reg m1 = 2
pred cbuf wait chk nxt hit

grab: when !cbuf t.tag==0 : mov c, t ; deq t ; set cbuf
req:  when cbuf !wait !chk !nxt : add rq, j, c ; clr cbuf ; set wait
upd:  when wait m : mov j, m ; deq m ; clr wait ; set chk
chk:  when chk : eq p:hit, j, acc ; clr chk ; set nxt
emit: when nxt hit : sub o, i, m1 ; clr hit
inc:  when nxt !hit : add i, i, #1 ; clr nxt
fin:  when !cbuf !wait !chk !nxt t.tag==eod : halt o#eod ; deq t
end

wire text.0 -> kmp.t
wire kmp.rq -> dfa.raddr
wire dfa.rdata -> kmp.m
wire kmp.o -> matches.0
`

func main() {
	nl, err := tia.ParseNetlist(netlist)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nl.Fabric.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}

	text := "abaabababba"
	fmt.Printf("text:    %s\n", text)
	fmt.Printf("pattern: aba\n")
	for _, pos := range nl.Sinks["matches"].Words() {
		fmt.Printf("match at %d: %s[%s]%s\n", pos,
			text[:pos], text[pos:pos+3], text[pos+3:])
	}
	fmt.Printf("(%d cycles, %s)\n", res.Cycles, strings.TrimSpace("single PE + DFA scratchpad"))
}
