// Matmul multiplies two 4x4 matrices on a three-element pipeline built
// through the public API: a multiplier PE forms element products from two
// operand streams and a reduction PE sums groups of four into result
// elements. The host streams A row-major (each row repeated four times)
// and B column-major (the whole matrix once per row of A), the classic
// operand ordering for a streaming dot-product engine.
package main

import (
	"fmt"
	"log"

	"tia"
)

const n = 4

const mulText = `
in av bv
out t
mul: when av.tag==0 bv.tag==0 : mul t, av, bv ; deq av ; deq bv
fin: when av.tag==eod : halt t#eod ; deq av
`

const accText = `
in t
out y
reg acc
reg rem = 4
reg n = 4
pred ph rstp rst2p
pred morep = 1

add:  when !ph morep t.tag==0 : add acc, acc, t ; deq t ; set ph
dec:  when ph : sub rem, p:morep, rem, #1 ; clr ph
emit: when !ph !morep !rstp !rst2p : mov y, acc ; set rstp
rst:  when rstp : mov acc, #0 ; clr rstp ; set rst2p
rst2: when rst2p : mov rem, n ; clr rst2p ; set morep
fin:  when !ph morep t.tag==eod : halt y#eod ; deq t
`

func main() {
	a := [n][n]tia.Word{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	}
	b := [n][n]tia.Word{
		{1, 0, 0, 1},
		{0, 1, 1, 0},
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	}

	// Operand streams: for every (i, j): a[i][0..3] and b[0..3][j].
	var as, bs []tia.Word
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				as = append(as, a[i][k])
				bs = append(bs, b[k][j])
			}
		}
	}

	mulProg, err := tia.ParseTIA("mul", mulText)
	if err != nil {
		log.Fatal(err)
	}
	mul, err := mulProg.Build(tia.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	accProg, err := tia.ParseTIA("acc", accText)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := accProg.Build(tia.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	f := tia.NewFabric(tia.DefaultFabricConfig())
	srcA := tia.NewWordSource("a", as, true)
	srcB := tia.NewWordSource("b", bs, false)
	out := tia.NewSink("c")
	f.Add(srcA)
	f.Add(srcB)
	f.Add(mul)
	f.Add(acc)
	f.Add(out)
	f.Wire(srcA, 0, mul, 0)
	f.Wire(srcB, 0, mul, 1)
	f.Wire(mul, 0, acc, 0)
	f.Wire(acc, 0, out, 0)

	res, err := f.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}

	c := out.Words()
	fmt.Printf("C = A x B in %d cycles:\n", res.Cycles)
	for i := 0; i < n; i++ {
		fmt.Printf("  %v\n", c[i*n:(i+1)*n])
	}
}
