// Latency demonstrates the property that makes spatial programs
// composable: channels are latency-insensitive, so the same program
// produces the same results — only timing changes — as wire latency and
// buffering vary. The example runs the merge-tree from the mergesort
// workload across several channel configurations and shows that the
// output stream is bit-identical while the cycle count degrades
// gracefully.
package main

import (
	"fmt"
	"log"

	"tia"
)

func run(capacity, latency int) ([]tia.Word, int64) {
	cfg := tia.DefaultFabricConfig()
	cfg.ChannelCapacity = capacity
	cfg.ChannelLatency = latency
	f := tia.NewFabric(cfg)

	quarters := [4][]tia.Word{
		{3, 9, 27, 81},
		{2, 4, 8, 16},
		{5, 25, 50, 75},
		{1, 10, 100, 1000},
	}
	var merges [3]*tia.PE
	for i := range merges {
		m, err := tia.NewPE(fmt.Sprintf("merge%d", i), tia.DefaultConfig(), tia.MergeProgram())
		if err != nil {
			log.Fatal(err)
		}
		merges[i] = m
		f.Add(m)
	}
	var srcs [4]*tia.Source
	for i, q := range quarters {
		srcs[i] = tia.NewWordSource(fmt.Sprintf("q%d", i), q, true)
		f.Add(srcs[i])
	}
	out := tia.NewSink("out")
	f.Add(out)
	f.Wire(srcs[0], 0, merges[0], 0)
	f.Wire(srcs[1], 0, merges[0], 1)
	f.Wire(srcs[2], 0, merges[1], 0)
	f.Wire(srcs[3], 0, merges[1], 1)
	f.Wire(merges[0], 0, merges[2], 0)
	f.Wire(merges[1], 0, merges[2], 1)
	f.Wire(merges[2], 0, out, 0)

	res, err := f.Run(100_000)
	if err != nil {
		log.Fatal(err)
	}
	return out.Words(), res.Cycles
}

func main() {
	ref, _ := run(4, 0)
	fmt.Printf("merged: %v\n\n", ref)
	fmt.Println("capacity  latency  cycles  identical-output")
	for _, cfg := range [][2]int{{4, 0}, {4, 2}, {4, 8}, {2, 0}, {1, 0}, {1, 8}} {
		got, cycles := run(cfg[0], cfg[1])
		same := len(got) == len(ref)
		for i := range got {
			if got[i] != ref[i] {
				same = false
			}
		}
		fmt.Printf("%8d  %7d  %6d  %v\n", cfg[0], cfg[1], cycles, same)
	}
}
