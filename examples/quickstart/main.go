// Quickstart: the paper's running example. A single triggered PE merges
// two sorted streams; the whole control structure — compare, pick a side,
// detect end-of-data, drain, terminate — is eight guarded instructions
// with no program counter and no branches.
package main

import (
	"fmt"
	"log"

	"tia"
)

func main() {
	f := tia.NewFabric(tia.DefaultFabricConfig())

	a := tia.NewWordSource("a", []tia.Word{1, 3, 5, 7, 11}, true)
	b := tia.NewWordSource("b", []tia.Word{2, 4, 6, 8, 9, 10}, true)
	merge, err := tia.NewPE("merge", tia.DefaultConfig(), tia.MergeProgram())
	if err != nil {
		log.Fatal(err)
	}
	out := tia.NewSink("out")

	f.Add(a)
	f.Add(b)
	f.Add(merge)
	f.Add(out)
	f.Wire(a, 0, merge, 0)
	f.Wire(b, 0, merge, 1)
	f.Wire(merge, 0, out, 0)

	res, err := f.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the merge kernel, as the scheduler sees it:")
	for _, inst := range merge.Program() {
		fmt.Printf("  %s\n", inst)
	}
	fmt.Printf("\nmerged %v in %d cycles (%d instructions fired)\n",
		out.Words(), res.Cycles, merge.DynamicInstructions())
}
