// Package tia is a simulator and toolkit for triggered-instruction
// spatial architectures, reproducing "Triggered Instructions: A Control
// Paradigm for Spatially-Programmed Architectures" (ISCA 2013).
//
// A spatial fabric is a graph of processing elements, scratchpad
// memories, sources and sinks connected by latency-insensitive tagged
// channels. Triggered PEs have no program counter: a hardware scheduler
// fires, each cycle, any instruction whose trigger — a conjunction over
// predicate registers and input-channel status/tags — holds. A PC-style
// baseline PE, a general-purpose core model, textual assemblers, the
// paper's eight-kernel workload suite and the full experiment harness are
// included; this package re-exports the stable surface of those internal
// packages.
//
// Quick start (the paper's running example, merging two sorted streams):
//
//	f := tia.NewFabric(tia.DefaultFabricConfig())
//	a := tia.NewWordSource("a", []tia.Word{1, 3, 5}, true)
//	b := tia.NewWordSource("b", []tia.Word{2, 4, 6}, true)
//	m, _ := tia.NewPE("merge", tia.DefaultConfig(), tia.MergeProgram())
//	out := tia.NewSink("out")
//	f.Add(a); f.Add(b); f.Add(m); f.Add(out)
//	f.Wire(a, 0, m, 0)
//	f.Wire(b, 0, m, 1)
//	f.Wire(m, 0, out, 0)
//	f.Run(10000)
//	fmt.Println(out.Words()) // [1 2 3 4 5 6]
package tia

import (
	"tia/internal/asm"
	"tia/internal/channel"
	"tia/internal/fabric"
	"tia/internal/gpp"
	"tia/internal/isa"
	"tia/internal/mem"
	"tia/internal/pcpe"
	"tia/internal/pe"
	"tia/internal/trace"
)

// Core ISA types.
type (
	// Word is the 32-bit datapath word.
	Word = isa.Word
	// Tag is the small out-of-band token tag.
	Tag = isa.Tag
	// Opcode is a single-cycle ALU operation.
	Opcode = isa.Opcode
	// Instruction is one triggered instruction.
	Instruction = isa.Instruction
	// Trigger is the guard of a triggered instruction.
	Trigger = isa.Trigger
	// Config is a triggered PE's architectural configuration.
	Config = isa.Config
)

// Fabric types.
type (
	// Fabric is a spatial array under construction or simulation.
	Fabric = fabric.Fabric
	// FabricConfig holds fabric-wide channel defaults.
	FabricConfig = fabric.Config
	// Element is anything the fabric steps each cycle.
	Element = fabric.Element
	// Source feeds a token stream into the fabric.
	Source = fabric.Source
	// Sink drains and records tokens at the fabric boundary.
	Sink = fabric.Sink
	// Channel is one latency-insensitive link.
	Channel = channel.Channel
	// Token is the unit of communication.
	Token = channel.Token
	// PE is a triggered-instruction processing element.
	PE = pe.PE
	// PCPE is the program-counter-style baseline processing element.
	PCPE = pcpe.PE
	// Scratchpad is a word-addressed fabric memory element.
	Scratchpad = mem.Scratchpad
	// GPP is the in-order general-purpose core model.
	GPP = gpp.Core
)

// TraceRecorder collects per-cycle instruction-fire events from PEs and
// renders logs, waterfall timelines and Chrome trace-event JSON.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder bounded to limit events (0 =
// unbounded). Attach it to PEs before running the fabric.
func NewTraceRecorder(limit int) *TraceRecorder { return trace.New(limit) }

// Assembler types.
type (
	// TIAProgram is a parsed triggered-instruction program.
	TIAProgram = asm.TIAProgram
	// PCProgram is a parsed sequential program.
	PCProgram = asm.PCProgram
	// Netlist is a fabric built from a textual description.
	Netlist = asm.Netlist
)

// Conventional tags.
const (
	TagData = isa.TagData
	TagEOD  = isa.TagEOD
)

// DefaultConfig returns the paper's evaluated PE configuration.
func DefaultConfig() Config { return isa.DefaultConfig() }

// DefaultFabricConfig returns the default channel configuration.
func DefaultFabricConfig() FabricConfig { return fabric.DefaultConfig() }

// NewFabric returns an empty fabric.
func NewFabric(cfg FabricConfig) *Fabric { return fabric.New(cfg) }

// NewPE compiles a triggered program into a processing element.
func NewPE(name string, cfg Config, prog []Instruction) (*PE, error) {
	return pe.New(name, cfg, prog)
}

// NewPCPE compiles a sequential program into a baseline element.
func NewPCPE(name string, cfg pcpe.Config, prog []pcpe.Inst) (*PCPE, error) {
	return pcpe.New(name, cfg, prog)
}

// NewSource returns a source emitting toks in order.
func NewSource(name string, toks []Token) *Source { return fabric.NewSource(name, toks) }

// NewWordSource returns a source emitting words as data tokens, with an
// optional trailing end-of-data token.
func NewWordSource(name string, words []Word, eod bool) *Source {
	return fabric.NewWordSource(name, words, eod)
}

// NewSink returns a sink that completes after one end-of-data token.
func NewSink(name string) *Sink { return fabric.NewSink(name) }

// NewCountingSink returns a sink that completes after n tokens.
func NewCountingSink(name string, n int) *Sink { return fabric.NewCountingSink(name, n) }

// NewScratchpad returns a zeroed scratchpad of the given word count.
func NewScratchpad(name string, words int) *Scratchpad { return mem.New(name, words) }

// MergeProgram returns the paper's running example: the triggered 2-way
// sorted-stream merge kernel.
func MergeProgram() []Instruction { return pe.MergeProgram() }

// ParseTIA parses a triggered-instruction program (see internal/asm for
// the grammar).
func ParseTIA(name, body string) (*TIAProgram, error) { return asm.ParseTIA(name, body) }

// ParsePC parses a sequential baseline program.
func ParsePC(name, body string) (*PCProgram, error) { return asm.ParsePC(name, body) }

// ParseNetlist builds a complete runnable fabric from a textual
// description of sources, sinks, scratchpads, PEs and wires.
func ParseNetlist(src string) (*Netlist, error) {
	return asm.ParseNetlist(src, isa.DefaultConfig(), pcpe.DefaultConfig())
}

// Data wraps a word in an ordinary data token; EOD returns the
// conventional end-of-data token.
func Data(w Word) Token { return channel.Data(w) }
func EOD() Token        { return channel.EOD() }
